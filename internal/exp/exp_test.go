package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bagraph/internal/stats"
)

// tinyOpt keeps test sweeps fast: two platforms spanning the design space
// (big out-of-order Haswell, in-order Bonnell) on down-scaled graphs.
func tinyOpt() Options {
	return Options{
		Scale:     0.003,
		Seed:      42,
		Platforms: []string{"Haswell", "Bonnell"},
	}
}

// fullTinyOpt exercises all 7 platforms at a very small scale.
func fullTinyOpt() Options {
	return Options{Scale: 0.002, Seed: 42}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale != 0.01 || o.Seed != 42 || len(o.Graphs) != 5 || len(o.Platforms) != 7 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestComputeSVShape(t *testing.T) {
	runs, err := ComputeSV(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5*2 {
		t.Fatalf("got %d runs, want 10", len(runs))
	}
	for _, r := range runs {
		if r.Iterations == 0 || len(r.BB) != r.Iterations || len(r.BA) != r.Iterations {
			t.Fatalf("%s/%s: malformed series", r.Platform, r.Graph)
		}
		if len(r.BBTime) != r.Iterations || len(r.BATime) != r.Iterations {
			t.Fatalf("%s/%s: time series length mismatch", r.Platform, r.Graph)
		}
		for i := range r.BBTime {
			if r.BBTime[i] <= 0 || r.BATime[i] <= 0 {
				t.Fatalf("%s/%s: non-positive simulated time", r.Platform, r.Graph)
			}
		}
	}
}

func TestComputeUnknownNamesError(t *testing.T) {
	if _, err := ComputeSV(Options{Platforms: []string{"Zen"}}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := ComputeSV(Options{Graphs: []string{"karate"}}); err == nil {
		t.Fatal("unknown graph accepted")
	}
	if _, err := ComputeBFS(Options{Platforms: []string{"Zen"}}); err == nil {
		t.Fatal("unknown platform accepted by BFS")
	}
}

// TestSVHeadlineShapes asserts the paper's §6.2 findings on the simulated
// sweep:
//  1. branch-based SV executes ~2x the branches of branch-avoiding;
//  2. branch-based mispredicts at least 1.5x more;
//  3. on the big out-of-order core (Haswell), branch-avoiding wins
//     overall;
//  4. per-iteration BB time decays from a slow, misprediction-heavy start
//     (first iteration above the per-iteration minimum).
func TestSVHeadlineShapes(t *testing.T) {
	runs, err := ComputeSV(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		bb, ba := r.BB.Total(), r.BA.Total()
		branchRatio := float64(bb.Branches) / float64(ba.Branches)
		if branchRatio < 1.5 || branchRatio > 2.1 {
			t.Errorf("%s/%s: branch ratio %.2f outside [1.5, 2.1]", r.Platform, r.Graph, branchRatio)
		}
		missRatio := float64(bb.Mispredicts) / float64(ba.Mispredicts)
		if missRatio < 1.3 {
			t.Errorf("%s/%s: misprediction ratio %.2f below 1.3", r.Platform, r.Graph, missRatio)
		}
		if r.Platform == "Haswell" && r.Speedup() < 1.0 {
			t.Errorf("Haswell/%s: SV speedup %.2f < 1 (branch-avoiding should win on big OoO cores)",
				r.Graph, r.Speedup())
		}
		if r.Iterations >= 3 {
			if r.BBTime[0] <= minOf(r.BBTime)*1.001 {
				t.Errorf("%s/%s: BB first iteration is the fastest; expected misprediction-heavy start",
					r.Platform, r.Graph)
			}
		}
	}
}

// TestBFSHeadlineShapes asserts the paper's §6.3 findings:
//  1. branch-avoiding BFS stores blow up by ≈ arcs/V;
//  2. branches drop ~2x;
//  3. on most platforms branch-avoiding BFS does NOT win (speedup < 1),
//     with slowdown bounded (paper: "always 2x or less").
func TestBFSHeadlineShapes(t *testing.T) {
	runs, err := ComputeBFS(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	wins, total := 0, 0
	for _, r := range runs {
		bb, ba := r.BB.Total(), r.BA.Total()
		storeRatio := float64(ba.Stores) / float64(bb.Stores)
		degree := float64(r.Arcs) / float64(r.Vertices)
		if storeRatio < degree*0.7 {
			t.Errorf("%s/%s: store blow-up %.1f too small for degree %.1f", r.Platform, r.Graph, storeRatio, degree)
		}
		branchRatio := float64(bb.Branches) / float64(ba.Branches)
		if branchRatio < 1.4 || branchRatio > 2.1 {
			t.Errorf("%s/%s: branch ratio %.2f outside [1.4, 2.1]", r.Platform, r.Graph, branchRatio)
		}
		sp := r.Speedup()
		if sp < 0.30 {
			t.Errorf("%s/%s: BFS slowdown %.2f breaches the paper's ~2x bound", r.Platform, r.Graph, sp)
		}
		total++
		if sp >= 1 {
			wins++
		}
	}
	if wins*2 >= total {
		t.Errorf("branch-avoiding BFS won %d/%d cases; paper reports mostly losses", wins, total)
	}
}

// TestSilvermontBFSAdvantage: §6.3 — the branch-avoiding BFS performs
// best on Silvermont. Check it wins on the low-degree graphs there and
// has a strictly better mean speedup than the other platforms.
func TestSilvermontBFSAdvantage(t *testing.T) {
	runs, err := ComputeBFS(Options{Scale: 0.003, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	perPlatform := map[string][]float64{}
	for _, r := range runs {
		perPlatform[r.Platform] = append(perPlatform[r.Platform], r.Speedup())
	}
	slv := stats.GeoMean(perPlatform["Silvermont"])
	for p, sps := range perPlatform {
		if p == "Silvermont" {
			continue
		}
		if gm := stats.GeoMean(sps); gm >= slv {
			t.Errorf("%s BFS geomean %.3f >= Silvermont %.3f; Silvermont should be best for branch-avoiding BFS", p, gm, slv)
		}
	}
}

// TestFig10Claims asserts the correlation findings of §6.4: for SV,
// mispredictions correlate with time more strongly than instructions,
// branches and loads (the paper's Fig. 10a: 0.705 vs 0.66/0.641/0.502
// pooled), on every platform and pooled; for BFS, stores correlate with
// time at least as strongly as mispredictions (Fig. 10b: the reason the
// transformation cannot pay off).
//
// One known divergence, documented in EXPERIMENTS.md: our branch-based SV
// kernel stores a label exactly when a comparison improves it, which
// makes the store count collinear with the label churn that also drives
// mispredictions — so corr(T,S) lands near corr(T,M) here, where the
// paper measured a much lower store correlation (0.405).
func TestFig10Claims(t *testing.T) {
	res, err := Compute(fullTinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	sv := SVCorrelations(res.SV)
	m, _ := sv.Metric("M")
	i, _ := sv.Metric("I")
	b, _ := sv.Metric("B")
	l, _ := sv.Metric("L")
	if m <= l || m <= b || m <= i {
		t.Errorf("SV pooled correlations: M=%.3f should exceed I=%.3f, B=%.3f, L=%.3f", m, i, b, l)
	}
	for p, cs := range sv.PerPlatform {
		// cs order: I, B, M, L, S.
		if cs[2] <= cs[0] || cs[2] <= cs[1] || cs[2] <= cs[3] {
			t.Errorf("SV %s: corr(T,M)=%.3f should exceed I=%.3f, B=%.3f, L=%.3f", p, cs[2], cs[0], cs[1], cs[3])
		}
	}

	bfs := BFSCorrelations(res.BFS)
	ms, _ := bfs.Metric("M")
	ss, _ := bfs.Metric("S")
	if ss < ms {
		t.Errorf("BFS pooled correlations: S=%.3f should be at least M=%.3f", ss, ms)
	}
}

// TestHybridDominates: the optimal hybrid never loses to either pure
// kernel and the plan switches after at least one branch-avoiding pass
// whenever a crossover exists.
func TestHybridDominates(t *testing.T) {
	runs, err := ComputeSV(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		h := HybridPlan(r)
		if h.HybridTotal > h.BBTotal*1.0000001 || h.HybridTotal > h.BATotal*1.0000001 {
			t.Errorf("%s/%s: hybrid (%.3g) worse than a pure kernel (BB %.3g, BA %.3g)",
				r.Platform, r.Graph, h.HybridTotal, h.BBTotal, h.BATotal)
		}
		if h.SpeedupVsBest() < 1 {
			t.Errorf("%s/%s: SpeedupVsBest %.3f < 1", r.Platform, r.Graph, h.SpeedupVsBest())
		}
		if h.Switch < 0 || h.Switch > h.Iterations {
			t.Errorf("%s/%s: switch point %d out of range", r.Platform, r.Graph, h.Switch)
		}
	}
}

// TestBonnellCrossover: on the in-order Bonnell, the expensive conditional
// move means the branch-based kernel wins the late, stable iterations —
// the paper's counter-example. The hybrid plan should therefore switch
// strictly before the end on at least one graph.
func TestBonnellCrossover(t *testing.T) {
	runs, err := ComputeSV(Options{Scale: 0.005, Seed: 42, Platforms: []string{"Bonnell"}})
	if err != nil {
		t.Fatal(err)
	}
	sawCrossover := false
	for _, r := range runs {
		h := HybridPlan(r)
		if h.Switch < h.Iterations {
			sawCrossover = true
		}
		// Late iterations: BB per-iteration time should drop below BA's.
		last := r.Iterations - 1
		if r.Iterations >= 3 && r.BBTime[last] < r.BATime[last] {
			sawCrossover = true
		}
	}
	if !sawCrossover {
		t.Error("no Bonnell crossover found; CondMoveExtra should make BB win late iterations somewhere")
	}
}

// --- renderer smoke tests: every exhibit renders non-empty output. ---

func TestRunnersRender(t *testing.T) {
	opt := Options{Scale: 0.002, Seed: 42, Platforms: []string{"Haswell", "Silvermont"}, Graphs: []string{"cond-mat-2005", "auto"}}
	for _, name := range Names() {
		if name == "all" {
			continue // covered by the pieces; "all" is slow in aggregate
		}
		var buf bytes.Buffer
		if err := Run(name, &buf, opt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", &bytes.Buffer{}, Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full render in -short mode")
	}
	var buf bytes.Buffer
	opt := Options{Scale: 0.002, Seed: 42, Platforms: []string{"Haswell", "Bonnell", "Silvermont"}, Graphs: []string{"cond-mat-2005", "coAuthorsDBLP"}}
	if err := All(&buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Fig 1", "Fig 2", "Fig 3", "Fig 9a", "Fig 10", "Hybrid", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestFig2ShowsConvergence(t *testing.T) {
	var buf bytes.Buffer
	Fig2(&buf)
	if !strings.Contains(buf.String(), "converged") {
		t.Fatalf("Fig2 output lacks convergence: %s", buf.String())
	}
}

func TestTable2ReportsAllGraphs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, Options{Scale: 0.002}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"audikw1", "auto", "coAuthorsDBLP", "cond-mat-2005", "ldoor"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table 2 missing %s", name)
		}
	}
}

// TestComputeWorkerWidthInvariant pins the parallel sweep contract:
// every cell simulates on a fresh machine, so the result rows are
// byte-identical at any pool width, in the same graph-major order.
func TestComputeWorkerWidthInvariant(t *testing.T) {
	opt := tinyOpt()
	opt.Workers = 1
	seq, err := Compute(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	par, err := Compute(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.SV, par.SV) {
		t.Fatal("SV sweep differs across worker widths")
	}
	if !reflect.DeepEqual(seq.BFS, par.BFS) {
		t.Fatal("BFS sweep differs across worker widths")
	}
}
