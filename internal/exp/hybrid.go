package exp

// The hybrid experiment: the paper's §6.2 observes that when the two SV
// kernels cross, there is a single crossover iteration — branch-avoiding
// is faster early (labels churn, the comparison branch is unpredictable)
// and branch-based late (labels stable, the branch is free). A hybrid that
// switches kernels at the crossover dominates both. This module evaluates
// that claim on the simulated per-iteration times: for each (platform,
// graph) it finds the switch point that minimizes total time and compares
// the hybrid against both pure kernels.

import (
	"fmt"
	"io"

	"bagraph/internal/report"
)

// HybridResult describes the optimal switch for one (platform, graph).
type HybridResult struct {
	Platform, Graph string
	// Switch is the first iteration executed branch-based (0 = pure
	// branch-based, Iterations = pure branch-avoiding).
	Switch     int
	Iterations int
	// BBTotal, BATotal, HybridTotal are simulated seconds.
	BBTotal, BATotal, HybridTotal float64
}

// SpeedupVsBest returns hybrid gain over the better pure kernel (≥ 1 by
// construction).
func (h HybridResult) SpeedupVsBest() float64 {
	best := h.BBTotal
	if h.BATotal < best {
		best = h.BATotal
	}
	return best / h.HybridTotal
}

// HybridPlan computes the optimal one-way BA→BB switch point from a run's
// per-iteration times.
func HybridPlan(r SVRun) HybridResult {
	n := r.Iterations
	// prefixBA[k] = time of running BA for the first k iterations.
	best := HybridResult{
		Platform: r.Platform, Graph: r.Graph, Iterations: n,
		BBTotal: sum(r.BBTime), BATotal: sum(r.BATime),
	}
	bestTotal := 0.0
	for k := 0; k <= n; k++ {
		total := sum(r.BATime[:k]) + sum(r.BBTime[k:])
		if k == 0 || total < bestTotal {
			bestTotal = total
			best.Switch = k
		}
	}
	best.HybridTotal = bestTotal
	return best
}

// Hybrid renders the §6.2 hybrid experiment.
func Hybrid(w io.Writer, runs []SVRun) {
	report.Section(w, "Hybrid SV (paper §6.2): switch branch-avoiding -> branch-based at the crossover")
	t := report.NewTable("", "Platform", "Graph", "iters", "switch@", "BB total", "BA total", "hybrid", "vs best pure")
	for _, r := range runs {
		h := HybridPlan(r)
		t.Add(h.Platform, h.Graph,
			fmt.Sprint(h.Iterations), fmt.Sprint(h.Switch),
			fmt.Sprintf("%.3gms", h.BBTotal*1e3),
			fmt.Sprintf("%.3gms", h.BATotal*1e3),
			fmt.Sprintf("%.3gms", h.HybridTotal*1e3),
			report.Ratio(h.SpeedupVsBest()))
	}
	t.Render(w)
}
