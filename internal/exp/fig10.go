package exp

// Fig. 10: pairwise correlations among time (T), instructions (I),
// branches (B), mispredictions (M), loads (L) and stores (S), measured
// per edge traversal, with one sample per (graph, iteration/level). The
// paper reports per-platform coefficients plus a pooled coefficient; the
// headline observations are:
//
//   - SV: mispredictions correlate with time more strongly than loads and
//     stores do;
//   - BFS: stores correlate with time about as strongly as mispredictions
//     (which is why trading branches for stores does not pay off).

import (
	"fmt"
	"io"
	"sort"

	"bagraph/internal/perfcount"
	"bagraph/internal/report"
	"bagraph/internal/stats"
)

// metricNames are Fig. 10's six quantities, in the paper's order.
var metricNames = []string{"T", "I", "B", "M", "L", "S"}

// sample is one per-edge-normalized observation.
type sample [6]float64

func newSample(seconds float64, c perfcount.Counters, edges float64) sample {
	if edges <= 0 {
		edges = 1
	}
	return sample{
		seconds * 1e9 / edges, // T: ns per edge
		float64(c.Instructions) / edges,
		float64(c.Branches) / edges,
		float64(c.Mispredicts) / edges,
		float64(c.Loads) / edges,
		float64(c.Stores) / edges,
	}
}

// svSamples extracts branch-based per-iteration samples grouped by
// platform (Fig. 10 plots the branch-based kernels).
func svSamples(runs []SVRun) map[string][]sample {
	out := map[string][]sample{}
	for _, r := range runs {
		edges := float64(r.Arcs)
		for i, c := range r.BB {
			out[r.Platform] = append(out[r.Platform], newSample(r.BBTime[i], c, edges))
		}
	}
	return out
}

func bfsSamples(runs []BFSRun) map[string][]sample {
	out := map[string][]sample{}
	for _, r := range runs {
		for i, c := range r.BB {
			edges := 1.0
			if i < len(r.EdgesPerLevel) {
				edges = float64(r.EdgesPerLevel[i])
			}
			out[r.Platform] = append(out[r.Platform], newSample(r.BBTime[i], c, edges))
		}
	}
	return out
}

func corrWithTime(samples []sample) []float64 {
	t := column(samples, 0)
	out := make([]float64, len(metricNames)-1)
	for j := 1; j < len(metricNames); j++ {
		out[j-1] = stats.Pearson(t, column(samples, j))
	}
	return out
}

func column(samples []sample, j int) []float64 {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s[j]
	}
	return xs
}

// CorrelationSummary holds the correlation-with-time coefficients for one
// algorithm, per platform and pooled, for programmatic checks.
type CorrelationSummary struct {
	// PerPlatform[name][k] is corr(T, metricNames[k+1]) on that platform.
	PerPlatform map[string][]float64
	// Pooled[k] is the correlation across all platforms' samples.
	Pooled []float64
}

// Metric returns the pooled correlation of time with the named metric
// ("I", "B", "M", "L" or "S").
func (c CorrelationSummary) Metric(name string) (float64, bool) {
	for j, n := range metricNames[1:] {
		if n == name {
			return c.Pooled[j], true
		}
	}
	return 0, false
}

func summarize(byPlatform map[string][]sample) CorrelationSummary {
	s := CorrelationSummary{PerPlatform: map[string][]float64{}}
	var all []sample
	for p, samples := range byPlatform {
		s.PerPlatform[p] = corrWithTime(samples)
		all = append(all, samples...)
	}
	s.Pooled = corrWithTime(all)
	return s
}

// SVCorrelations computes the Fig. 10(a) summary.
func SVCorrelations(runs []SVRun) CorrelationSummary { return summarize(svSamples(runs)) }

// BFSCorrelations computes the Fig. 10(b) summary.
func BFSCorrelations(runs []BFSRun) CorrelationSummary { return summarize(bfsSamples(runs)) }

func renderCorr(w io.Writer, title string, s CorrelationSummary) {
	t := report.NewTable(title, "Platform", "corr(T,I)", "corr(T,B)", "corr(T,M)", "corr(T,L)", "corr(T,S)")
	names := make([]string, 0, len(s.PerPlatform))
	for p := range s.PerPlatform {
		names = append(names, p)
	}
	sort.Strings(names)
	row := func(label string, cs []float64) {
		cells := []string{label}
		for _, c := range cs {
			cells = append(cells, fmt.Sprintf("%.3f", c))
		}
		t.Add(cells...)
	}
	for _, p := range names {
		row(p, s.PerPlatform[p])
	}
	row("pooled", s.Pooled)
	t.Render(w)
}

// Fig10 renders both correlation panels.
func Fig10(w io.Writer, res *Results) {
	report.Section(w, "Fig 10: correlation of per-edge time with hardware events (branch-based kernels)")
	sv := SVCorrelations(res.SV)
	bfs := BFSCorrelations(res.BFS)
	renderCorr(w, "(a) Shiloach-Vishkin", sv)
	fmt.Fprintln(w)
	renderCorr(w, "(b) top-down BFS", bfs)

	mSV, _ := sv.Metric("M")
	lSV, _ := sv.Metric("L")
	sSV, _ := sv.Metric("S")
	mBFS, _ := bfs.Metric("M")
	sBFS, _ := bfs.Metric("S")
	fmt.Fprintf(w, "\nSV:  corr(T,M)=%.3f vs corr(T,L)=%.3f, corr(T,S)=%.3f — mispredictions dominate\n", mSV, lSV, sSV)
	fmt.Fprintf(w, "BFS: corr(T,S)=%.3f vs corr(T,M)=%.3f — stores rival mispredictions\n", sBFS, mBFS)
}
