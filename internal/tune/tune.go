// Package tune is the serving-time analogue of the paper's hybrid
// predictor: an adaptive controller that picks the performance knobs
// of each kernel dispatch — chunk schedule, delta-stepping bucket
// width, and the branch-based/branch-avoiding/hybrid cutover — per
// (graph, kernel) from the live Stats counters the unified Run API
// returns, instead of a static flag chosen at daemon start.
//
// Every knob the controller turns is result-invariant by construction:
// bb/ba/hybrid are the same algorithm with different branch structure
// (the paper's premise), schedule and chunking only redistribute the
// same work, delta only re-buckets the same relaxations, and the
// light/heavy split reorders them. A Decision can therefore never
// change an answer, only its latency — the byte-identity property
// tests pin exactly that across the corpus.
//
// The bb/ba cutover is seeded from internal/predictor, the seed's
// model of the paper's §3: a 2-bit saturating counter is simulated
// over traces of varying taken-fractions to find the per-pass
// change fraction at which the branch-based kernel's misprediction
// cost overtakes the branch-avoiding kernel's unconditional-store
// overhead. Observed per-pass change fractions from live traffic then
// classify each (graph, kernel) cell against that threshold.
package tune

import (
	"sync"

	"bagraph"
	"bagraph/internal/predictor"
)

// Kernel kind names, matching the serving layer's query families.
const (
	KindCC   = "cc"
	KindBFS  = "bfs"
	KindSSSP = "sssp"
	KindMS   = "ms"
)

// Workload identifies one (graph, kernel) cell and carries the static
// shape facts a first decision needs before any run has been observed.
type Workload struct {
	// Graph and Epoch identify the resident graph; a replaced graph
	// (new epoch) starts a fresh cell, mirroring the serve layer's
	// cache retirement.
	Graph string
	Epoch uint64
	// Kind is the kernel family (KindCC, KindBFS, KindSSSP, KindMS).
	Kind string
	// Vertices and Arcs size the graph.
	Vertices int
	Arcs     int64
	// MaxDegree is the largest vertex degree — with Workers it bounds
	// the arc skew any static partition can suffer.
	MaxDegree int
	// Workers is the resident pool size the dispatch will use.
	Workers int
	// DefaultDelta is the graph's precomputed delta-stepping bucket
	// width (KindSSSP); the delta decision scales it.
	DefaultDelta uint64
}

// Decision is the controller's pick for one dispatch.
type Decision struct {
	// Algo is the canonical serving-layer algorithm name for the cell's
	// kind (e.g. "par-ba"); it resolves the query-level "auto" request.
	Algo string
	// Schedule is the chunk schedule for the parallel kernels.
	Schedule bagraph.Schedule
	// Delta is the delta-stepping bucket width (KindSSSP; 0 keeps the
	// kernel default).
	Delta uint64
	// LightHeavy enables the Meyer & Sanders light/heavy arc split
	// (KindSSSP).
	LightHeavy bool
}

// Controller tuning constants. Exported so tests and docs state the
// contract once.
const (
	// SkewThreshold is the structural arc-skew above which a cell
	// starts under the stealing schedule: one vertex's arcs exceeding
	// half a worker's fair share means a static partition can stall a
	// pass barrier behind that block.
	SkewThreshold = 0.5
	// SettleRuns is how many observed runs a cell accumulates before
	// it revisits a knob — decisions must be stable under batched
	// traffic, not flap per query.
	SettleRuns = 8
	// stealFloor is the steals-per-pass EWMA below which a stealing
	// cell falls back to static: the scheduler is paying chunk-cursor
	// traffic without shedding any work.
	stealFloor = 0.5
	// bucketsHigh and bucketsLow bound the observed bucket count per
	// SSSP run: above the high mark delta doubles (fewer, fuller
	// buckets), below the low mark — when relaxation blow-up says the
	// buckets are too coarse — it halves.
	bucketsHigh = 128
	bucketsLow  = 8
	// blowupHigh is the candidate-store amplification (CandStores per
	// applied distance store) above which the cell turns on the
	// light/heavy split and considers a finer delta: work is being
	// re-relaxed, the signature of over-wide buckets.
	blowupHigh = 2.0
	// deltaShiftMin/Max clamp the delta scaling to 2^-4 .. 2^8 of the
	// graph default.
	deltaShiftMin = -4
	deltaShiftMax = 8
	// ewmaAlpha is the weight of the newest observation.
	ewmaAlpha = 0.25
	// missPenalty and storeCost are the cycle-scale constants behind
	// the predictor-seeded cutover: a mispredicted branch costs a
	// pipeline flush (~16 cycles, the paper's §2 ballpark), the
	// branch-avoiding rewrite costs an always-executed store-and-mask
	// (~2 cycles) per edge.
	missPenalty = 16.0
	storeCost   = 2.0
)

// key identifies a cell.
type key struct {
	graph string
	epoch uint64
	kind  string
}

// ewma is an exponentially weighted moving average that treats its
// first sample as the baseline.
type ewma struct {
	v      float64
	primed bool
}

func (e *ewma) add(x float64) {
	if !e.primed {
		e.v, e.primed = x, true
		return
	}
	e.v += ewmaAlpha * (x - e.v)
}

// cell is the per-(graph, kernel) adaptive state.
type cell struct {
	runs int

	schedule     bagraph.Schedule
	schedSettled bool // fell back to static: no more steal counters, stay
	stealRate    ewma

	algo     string
	hiPasses uint64 // passes observed with change fraction >= cutover
	loPasses uint64

	deltaShift       int
	sinceDeltaChange int
	buckets          ewma
	blowup           ewma
	lightHeavy       bool
}

// Controller holds the adaptive cells. All methods are safe for
// concurrent use; Decide and Observe take one short mutex hold each —
// negligible next to the kernel run they bracket.
type Controller struct {
	cutover float64
	mu      sync.Mutex
	cells   map[key]*cell
}

// New returns a controller with the bb/ba cutover seeded from the
// 2-bit predictor model.
func New() *Controller {
	return &Controller{cutover: CutoverFraction(), cells: make(map[key]*cell)}
}

// Cutover returns the seeded change-fraction threshold: per-pass
// change fractions at or above it make the branch-based kernel's
// predicted misprediction cost exceed the branch-avoiding overhead.
func (c *Controller) Cutover() float64 { return c.cutover }

// cellFor returns (creating if needed) the cell for w. Callers hold
// c.mu.
func (c *Controller) cellFor(w Workload) *cell {
	k := key{w.Graph, w.Epoch, w.Kind}
	cl := c.cells[k]
	if cl == nil {
		cl = &cell{schedule: initialSchedule(w), algo: defaultAlgo(w.Kind)}
		c.cells[k] = cl
	}
	return cl
}

// initialSchedule picks the first schedule from graph structure alone:
// steal when the largest vertex's arcs exceed SkewThreshold of one
// worker's fair share — the forced-skew case where a static partition
// must hand some worker a hub-dominated block.
func initialSchedule(w Workload) bagraph.Schedule {
	if w.Arcs <= 0 || w.Workers <= 1 {
		return bagraph.ScheduleStatic
	}
	skew := float64(w.MaxDegree) * float64(w.Workers) / float64(w.Arcs)
	if skew > SkewThreshold {
		return bagraph.ScheduleStealing
	}
	return bagraph.ScheduleStatic
}

// defaultAlgo is the untrained pick per kind: the hybrids, the paper's
// §6.2 recommendation, until live counters say a pure form is safe.
func defaultAlgo(kind string) string {
	switch kind {
	case KindCC, KindSSSP:
		return "par-hybrid"
	case KindMS:
		return "ms"
	default:
		return "par-do"
	}
}

// Decide returns the controller's current pick for one dispatch
// against w.
func (c *Controller) Decide(w Workload) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.cellFor(w)
	d := Decision{
		Algo:       cl.algo,
		Schedule:   cl.schedule,
		LightHeavy: cl.lightHeavy,
	}
	if w.Kind == KindSSSP {
		d.Delta = shiftDelta(w.DefaultDelta, cl.deltaShift)
	}
	return d
}

// shiftDelta scales the default bucket width by 2^shift, clamped to
// stay a positive width.
func shiftDelta(delta uint64, shift int) uint64 {
	if delta == 0 {
		return 0
	}
	switch {
	case shift > 0:
		return delta << uint(shift)
	case shift < 0:
		d := delta >> uint(-shift)
		if d == 0 {
			return 1
		}
		return d
	default:
		return delta
	}
}

// Observe feeds one completed run's counters back into w's cell. n
// passes of the kernel's Stats drive three independent knobs:
//
//   - schedule: a stealing cell whose steals-per-pass EWMA sits below
//     stealFloor after SettleRuns falls back to static — the skew the
//     structure suggested is not materializing in this traffic;
//   - algo: each pass's changed-vertex fraction is classified against
//     the predictor-seeded cutover; a cell whose passes are all on one
//     side settles on the pure kernel for that side, mixed cells stay
//     hybrid;
//   - delta and light/heavy (KindSSSP): bucket-count and
//     candidate-blow-up EWMAs widen or narrow the bucket width one
//     power of two per SettleRuns, and persistent blow-up turns on the
//     light/heavy split.
func (c *Controller) Observe(w Workload, st bagraph.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.cellFor(w)
	cl.runs++

	// Schedule: only stealing runs carry steal counters.
	if cl.schedule == bagraph.ScheduleStealing && st.Chunks > 0 {
		cl.stealRate.add(st.StealsPerPass())
		if !cl.schedSettled && cl.runs >= SettleRuns && cl.stealRate.v < stealFloor {
			cl.schedule = bagraph.ScheduleStatic
			cl.schedSettled = true
		}
	}

	// Algo: classify each observed pass's change fraction against the
	// cutover. BFS kernels report no PassChanges; their cells keep the
	// direction-optimizing default.
	if w.Vertices > 0 {
		for _, changed := range st.PassChanges {
			f := float64(changed) / float64(w.Vertices)
			if f >= c.cutover {
				cl.hiPasses++
			} else {
				cl.loPasses++
			}
		}
	}
	if (w.Kind == KindCC || w.Kind == KindSSSP) && cl.runs >= SettleRuns {
		total := cl.hiPasses + cl.loPasses
		switch {
		case total == 0:
			// No pass evidence (empty graphs): keep the hybrid.
		case cl.hiPasses == 0:
			cl.algo = "par-bb" // every pass predictable: branches are free
		case cl.loPasses == 0:
			cl.algo = "par-ba" // every pass churns: avoid the branches
		default:
			cl.algo = "par-hybrid" // churn then convergence: the paper's cutover
		}
	}

	// Delta and light/heavy: SSSP only.
	if w.Kind == KindSSSP {
		if st.Buckets > 0 {
			cl.buckets.add(float64(st.Buckets))
		}
		if st.DistStores > 0 {
			cl.blowup.add(float64(st.CandStores) / float64(st.DistStores))
		}
		cl.sinceDeltaChange++
		if cl.blowup.primed && cl.blowup.v > blowupHigh {
			cl.lightHeavy = true
		}
		if cl.sinceDeltaChange >= SettleRuns && cl.buckets.primed {
			switch {
			case cl.buckets.v > bucketsHigh && cl.deltaShift < deltaShiftMax:
				cl.deltaShift++
				cl.sinceDeltaChange = 0
			case cl.buckets.v < bucketsLow && cl.blowup.primed &&
				cl.blowup.v > blowupHigh && cl.deltaShift > deltaShiftMin:
				cl.deltaShift--
				cl.sinceDeltaChange = 0
			}
		}
	}
}

// Runs reports how many runs w's cell has observed (0 for an unseen
// cell) — the warm-up observability hook.
func (c *Controller) Runs(w Workload) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.cells[key{w.Graph, w.Epoch, w.Kind}]
	if cl == nil {
		return 0
	}
	return cl.runs
}

// MispredictRate estimates the steady-state misprediction rate of the
// paper's 2-bit saturating counter on a branch taken with probability
// p, by simulating predictor.TwoBitUnit over a deterministic
// low-discrepancy trace (Bresenham-spread takes, no RNG: the estimate
// is reproducible and the controller stays bit-deterministic).
func MispredictRate(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	u := predictor.NewTwoBit(predictor.WeaklyNotTaken)
	const n = 4096
	misses, acc := 0, 0.0
	for i := 0; i < n; i++ {
		acc += p
		taken := acc >= 1
		if taken {
			acc -= 1
		}
		if predictor.Observe(u, 0, taken) {
			misses++
		}
	}
	return float64(misses) / n
}

// CutoverFraction derives the per-pass change-fraction threshold at
// which the branch-avoiding kernel starts winning: the smallest
// fraction whose predicted misprediction cost (MispredictRate ×
// missPenalty per edge-test) exceeds the branch-avoiding rewrite's
// constant store overhead. The scan is over [0, 0.5] — beyond one half
// the branch is taken-majority and the 2-bit counter tracks it again,
// but SV/delta-stepping passes converge downward through exactly this
// range, which is what the hybrid's switch rides.
func CutoverFraction() float64 {
	target := storeCost / missPenalty
	for f := 0.01; f <= 0.5; f += 0.01 {
		if MispredictRate(f) >= target {
			return f
		}
	}
	return 0.5
}
