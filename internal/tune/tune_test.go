package tune_test

import (
	"context"
	"math"
	"testing"

	"bagraph"
	"bagraph/internal/algoreq"
	"bagraph/internal/graph"
	"bagraph/internal/sssp"
	"bagraph/internal/testutil"
	"bagraph/internal/tune"
)

func TestMispredictRateShape(t *testing.T) {
	if r := tune.MispredictRate(0); r != 0 {
		t.Fatalf("rate(0) = %v, want 0", r)
	}
	if r := tune.MispredictRate(1); r != 0 {
		t.Fatalf("rate(1) = %v, want 0", r)
	}
	lo, mid := tune.MispredictRate(0.02), tune.MispredictRate(0.5)
	if lo >= 0.1 {
		t.Fatalf("rate(0.02) = %v, want a near-always-predicted branch", lo)
	}
	if mid < 0.25 {
		t.Fatalf("rate(0.5) = %v, want an unpredictable branch", mid)
	}
	if lo >= mid {
		t.Fatalf("rate not increasing toward 0.5: rate(0.02)=%v rate(0.5)=%v", lo, mid)
	}
	// Determinism: the simulation must not depend on call order.
	if a, b := tune.MispredictRate(0.3), tune.MispredictRate(0.3); a != b {
		t.Fatalf("rate(0.3) nondeterministic: %v vs %v", a, b)
	}
}

func TestCutoverFraction(t *testing.T) {
	f := tune.CutoverFraction()
	if f <= 0 || f > 0.5 {
		t.Fatalf("cutover = %v, want in (0, 0.5]", f)
	}
	if c := tune.New().Cutover(); c != f {
		t.Fatalf("controller cutover %v != CutoverFraction %v", c, f)
	}
}

// workload builds a Workload from a graph the way the serving layer
// does.
func workload(g *graph.Graph, kind string, workers int, delta uint64) tune.Workload {
	return tune.Workload{
		Graph:        g.Name(),
		Epoch:        1,
		Kind:         kind,
		Vertices:     g.NumVertices(),
		Arcs:         g.NumArcs(),
		MaxDegree:    g.Degrees().Max,
		Workers:      workers,
		DefaultDelta: delta,
	}
}

func TestInitialScheduleFromSkew(t *testing.T) {
	c := tune.New()
	// Hub graph: vertex 0 owns well over half the arcs — any static
	// partition stalls on its block.
	hub := testutil.Hub(192, 600)
	if d := c.Decide(workload(hub, tune.KindCC, 4, 0)); d.Schedule != bagraph.ScheduleStealing {
		t.Fatalf("hub graph: schedule = %v, want stealing", d.Schedule)
	}
	// A flat path has no skew to steal around.
	path := pathGraph(t, 256)
	if d := c.Decide(workload(path, tune.KindCC, 4, 0)); d.Schedule != bagraph.ScheduleStatic {
		t.Fatalf("path graph: schedule = %v, want static", d.Schedule)
	}
	// One worker never steals.
	if d := c.Decide(workload(hub, tune.KindBFS, 1, 0)); d.Schedule != bagraph.ScheduleStatic {
		t.Fatalf("hub graph, 1 worker: schedule = %v, want static", d.Schedule)
	}
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: "tunepath"})
}

func TestScheduleFallbackOnIdleStealer(t *testing.T) {
	c := tune.New()
	hub := testutil.Hub(192, 600)
	w := workload(hub, tune.KindCC, 4, 0)
	if d := c.Decide(w); d.Schedule != bagraph.ScheduleStealing {
		t.Fatalf("initial schedule = %v, want stealing", d.Schedule)
	}
	// Feed runs whose steal counters stayed flat: chunks were made but
	// nobody needed to take one.
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(w, bagraph.Stats{Passes: 4, Chunks: 64, Steals: 0})
	}
	if d := c.Decide(w); d.Schedule != bagraph.ScheduleStatic {
		t.Fatalf("after %d stealless runs: schedule = %v, want static", tune.SettleRuns, d.Schedule)
	}
	// Hot stealing on a different cell stays stealing.
	w2 := workload(hub, tune.KindSSSP, 4, 16)
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(w2, bagraph.Stats{Passes: 4, Chunks: 64, Steals: 40})
	}
	if d := c.Decide(w2); d.Schedule != bagraph.ScheduleStealing {
		t.Fatalf("hot stealer fell back: schedule = %v", d.Schedule)
	}
}

func TestAlgoCutoverFromChangeFractions(t *testing.T) {
	g := pathGraph(t, 1000)
	n := g.NumVertices()
	c := tune.New()
	cut := c.Cutover()
	quiet := int(float64(n)*cut) - 1 // below the cutover
	churn := int(float64(n)*cut) + 1 // at/above the cutover

	// All passes quiet: branch-based is free of mispredictions.
	wBB := workload(g, tune.KindCC, 2, 0)
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(wBB, bagraph.Stats{Passes: 3, PassChanges: []int{quiet, quiet, quiet}})
	}
	if d := c.Decide(wBB); d.Algo != "par-bb" {
		t.Fatalf("quiet cell: algo = %q, want par-bb", d.Algo)
	}

	// All passes churning: avoid the branches throughout.
	wBA := workload(g, tune.KindSSSP, 2, 16)
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(wBA, bagraph.Stats{Passes: 3, PassChanges: []int{churn, churn, churn}})
	}
	if d := c.Decide(wBA); d.Algo != "par-ba" {
		t.Fatalf("churning cell: algo = %q, want par-ba", d.Algo)
	}

	// Churn then convergence: the hybrid's home ground.
	wHy := workload(g, tune.KindCC, 4, 0)
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(wHy, bagraph.Stats{Passes: 3, PassChanges: []int{churn, churn, quiet}})
	}
	if d := c.Decide(wHy); d.Algo != "par-hybrid" {
		t.Fatalf("mixed cell: algo = %q, want par-hybrid", d.Algo)
	}

	// Before SettleRuns the default holds.
	wNew := workload(g, tune.KindCC, 8, 0)
	c.Observe(wNew, bagraph.Stats{Passes: 1, PassChanges: []int{quiet}})
	if d := c.Decide(wNew); d.Algo != "par-hybrid" {
		t.Fatalf("unsettled cell: algo = %q, want the hybrid default", d.Algo)
	}
	// BFS cells never leave the direction-optimizing kernel.
	wBFS := workload(g, tune.KindBFS, 2, 0)
	for i := 0; i < 2*tune.SettleRuns; i++ {
		c.Observe(wBFS, bagraph.Stats{Passes: 5})
	}
	if d := c.Decide(wBFS); d.Algo != "par-do" {
		t.Fatalf("bfs cell: algo = %q, want par-do", d.Algo)
	}
}

func TestDeltaAdaptation(t *testing.T) {
	g := pathGraph(t, 1000)
	c := tune.New()
	w := workload(g, tune.KindSSSP, 2, 32)

	// Too many buckets: the width doubles, once per settle period.
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(w, bagraph.Stats{Passes: 2, Buckets: 1000, DistStores: 100, CandStores: 100})
	}
	if d := c.Decide(w); d.Delta != 64 {
		t.Fatalf("bucket-heavy cell: delta = %d, want 64", d.Delta)
	}
	for i := 0; i < tune.SettleRuns; i++ {
		c.Observe(w, bagraph.Stats{Passes: 2, Buckets: 1000, DistStores: 100, CandStores: 100})
	}
	if d := c.Decide(w); d.Delta != 128 {
		t.Fatalf("second settle period: delta = %d, want 128", d.Delta)
	}

	// Few buckets + heavy blow-up: the width halves and the
	// light/heavy split turns on.
	w2 := tune.Workload{Graph: "other", Epoch: 1, Kind: tune.KindSSSP,
		Vertices: 1000, Arcs: 2000, MaxDegree: 2, Workers: 2, DefaultDelta: 32}
	for i := 0; i < 2*tune.SettleRuns; i++ {
		c.Observe(w2, bagraph.Stats{Passes: 2, Buckets: 2, DistStores: 100, CandStores: 1000})
	}
	d := c.Decide(w2)
	if d.Delta >= 32 {
		t.Fatalf("blown-up cell: delta = %d, want narrower than 32", d.Delta)
	}
	if !d.LightHeavy {
		t.Fatal("blown-up cell: light/heavy split not enabled")
	}

	// The shift clamps: pile on bucket-heavy observations and the
	// delta must stop at 2^deltaShiftMax over the default.
	for i := 0; i < 20*tune.SettleRuns; i++ {
		c.Observe(w, bagraph.Stats{Passes: 2, Buckets: 100000, DistStores: 1, CandStores: 1})
	}
	if d := c.Decide(w); d.Delta > 32<<8 {
		t.Fatalf("delta unclamped: %d", d.Delta)
	}
	// A zero default stays zero (kernel default), whatever the shift.
	w3 := workload(g, tune.KindMS, 2, 0)
	if d := c.Decide(w3); d.Delta != 0 {
		t.Fatalf("zero default delta scaled to %d", d.Delta)
	}
}

func TestRunsCounter(t *testing.T) {
	c := tune.New()
	g := pathGraph(t, 10)
	w := workload(g, tune.KindCC, 2, 0)
	if c.Runs(w) != 0 {
		t.Fatal("unseen cell reports runs")
	}
	c.Observe(w, bagraph.Stats{Passes: 1})
	c.Observe(w, bagraph.Stats{Passes: 1})
	if got := c.Runs(w); got != 2 {
		t.Fatalf("runs = %d, want 2", got)
	}
}

// decidedRequest materializes a Decision into the facade Request the
// serving layer would dispatch, through the same algoreq translation
// table.
func decidedRequest(t *testing.T, kind string, d tune.Decision, root uint32) bagraph.Request {
	t.Helper()
	var req bagraph.Request
	var err error
	switch kind {
	case tune.KindCC:
		req, err = algoreq.CC(d.Algo)
	case tune.KindBFS:
		req, err = algoreq.BFS(d.Algo, root)
	case tune.KindSSSP:
		req, err = algoreq.SSSP(d.Algo, root, d.Delta)
		req.LightHeavy = d.LightHeavy
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatalf("decision %+v is not a dispatchable algorithm: %v", d, err)
	}
	req.Schedule = d.Schedule
	return req
}

// TestAutotuneByteIdentity is the acceptance property: across the
// corpus and the standard worker sweep, a controller-driven request —
// after the controller has been trained on its own observations —
// returns arrays byte-identical to the static default choice, for
// every kernel family. The tuner may only ever move latency.
func TestAutotuneByteIdentity(t *testing.T) {
	seeds := []uint64{1}
	testutil.ForEachGraph(t, seeds, func(t *testing.T, g *graph.Graph) {
		n := g.NumVertices()
		if n == 0 {
			return
		}
		oracleCC, err := bagraph.Run(context.Background(), g, bagraph.Request{
			Kind: bagraph.KindCC, CC: bagraph.CCHybrid, Parallel: true, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracleBFS, err := bagraph.Run(context.Background(), g, bagraph.Request{
			Kind: bagraph.KindBFS, Parallel: true, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range testutil.WorkerCounts {
			c := tune.New()
			wCC := workload(g, tune.KindCC, workers, 0)
			wBFS := workload(g, tune.KindBFS, workers, 0)
			// Train across settle boundaries so every knob the cell will
			// ever flip gets exercised, checking identity at each step.
			for round := 0; round < tune.SettleRuns+2; round++ {
				dCC := c.Decide(wCC)
				reqCC := decidedRequest(t, tune.KindCC, dCC, 0)
				reqCC.Workers = workers
				resCC, err := bagraph.Run(context.Background(), g, reqCC)
				if err != nil {
					t.Fatalf("workers=%d round=%d cc %+v: %v", workers, round, dCC, err)
				}
				testutil.MustEqualLabels(t, "tuned cc", resCC.Labels, oracleCC.Labels)
				c.Observe(wCC, resCC.Stats)

				dBFS := c.Decide(wBFS)
				reqBFS := decidedRequest(t, tune.KindBFS, dBFS, 0)
				reqBFS.Workers = workers
				resBFS, err := bagraph.Run(context.Background(), g, reqBFS)
				if err != nil {
					t.Fatalf("workers=%d round=%d bfs %+v: %v", workers, round, dBFS, err)
				}
				testutil.MustEqualDists(t, "tuned bfs", resBFS.Hops, oracleBFS.Hops)
				c.Observe(wBFS, resBFS.Stats)
			}
		}
	})
	testutil.ForEachWeighted(t, seeds, func(t *testing.T, g *graph.Weighted) {
		if g.NumVertices() == 0 {
			return
		}
		delta := sssp.DefaultDelta(g)
		oracle, err := bagraph.Run(context.Background(), g, bagraph.Request{
			Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPHybrid, Parallel: true, Workers: 2, Delta: delta,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range testutil.WorkerCounts {
			c := tune.New()
			w := tune.Workload{
				Graph: g.Name(), Epoch: 1, Kind: tune.KindSSSP,
				Vertices: g.NumVertices(), Arcs: g.NumArcs(),
				MaxDegree: g.Degrees().Max, Workers: workers, DefaultDelta: delta,
			}
			for round := 0; round < tune.SettleRuns+2; round++ {
				d := c.Decide(w)
				req := decidedRequest(t, tune.KindSSSP, d, 0)
				req.Workers = workers
				res, err := bagraph.Run(context.Background(), g, req)
				if err != nil {
					t.Fatalf("workers=%d round=%d sssp %+v: %v", workers, round, d, err)
				}
				testutil.MustEqualDists(t, "tuned sssp", res.Dists, oracle.Dists)
				c.Observe(w, res.Stats)
			}
		}
	})
}

// TestDecisionsAlwaysDispatchable fuzzes the decision surface lightly:
// whatever counters a cell absorbs, its Decision must always name a
// kernel algoreq can translate and carry a representable delta.
func TestDecisionsAlwaysDispatchable(t *testing.T) {
	c := tune.New()
	g := pathGraph(t, 64)
	for kindIdx, kind := range []string{tune.KindCC, tune.KindBFS, tune.KindSSSP} {
		w := workload(g, kind, 4, 16)
		for i := 0; i < 4*tune.SettleRuns; i++ {
			st := bagraph.Stats{
				Passes:      1 + i%5,
				PassChanges: []int{i % 70, (i * 13) % 70},
				Buckets:     (i * 7) % 3000,
				DistStores:  uint64(1 + i%100),
				CandStores:  uint64((i * 31) % 10000),
				Chunks:      i % 100,
				Steals:      uint64((i * kindIdx) % 50),
			}
			c.Observe(w, st)
			d := c.Decide(w)
			decidedRequest(t, kind, d, 0) // fatals on an untranslatable decision
			if d.Delta != 0 && (d.Delta > math.MaxUint64>>1 || d.Delta < 1) {
				t.Fatalf("delta out of range: %d", d.Delta)
			}
		}
	}
}
