package bfs

import (
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

type kernel struct {
	name string
	run  func(*graph.Graph, uint32) ([]uint32, Stats)
}

func kernels() []kernel {
	return []kernel{
		{"branch-based", TopDownBranchBased},
		{"branch-avoiding", TopDownBranchAvoiding},
		{"direction-optimizing", func(g *graph.Graph, r uint32) ([]uint32, Stats) {
			return DirectionOptimizing(g, r, 0, 0)
		}},
	}
}

func referenceDistances(g *graph.Graph, root uint32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[root] = 0
	q := []uint32{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Inf {
				dist[w] = dist[v] + 1
				q = append(q, w)
			}
		}
	}
	return dist
}

func TestKernelsAgreeOnStructuredGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(60),
		gen.Cycle(31),
		gen.Star(100),
		gen.Complete(15),
		gen.Grid2D(9, 14, true),
		gen.Grid3D(4, 5, 6, 1),
		gen.Disconnected(gen.Path(8), 3),
	}
	for _, g := range graphs {
		want := referenceDistances(g, 0)
		for _, k := range kernels() {
			got, st := k.run(g, 0)
			if err := Verify(g, 0, got); err != nil {
				t.Fatalf("%s on %s: %v", k.name, g, err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s on %s: dist[%d] = %d, want %d", k.name, g, v, got[v], want[v])
				}
			}
			reached := 0
			for _, d := range want {
				if d != Inf {
					reached++
				}
			}
			if st.Reached != reached {
				t.Fatalf("%s on %s: Reached = %d, want %d", k.name, g, st.Reached, reached)
			}
		}
	}
}

func TestKernelsAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 30 + int(seed%150)
		g := gen.GNM(n, 2*int64(n), seed)
		root := uint32(seed % uint64(n))
		want := referenceDistances(g, root)
		for _, k := range kernels() {
			got, _ := k.run(g, root)
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLevelAccounting(t *testing.T) {
	g := gen.Path(10)
	for _, k := range kernels() {
		_, st := k.run(g, 0)
		if st.Levels != 10 {
			t.Fatalf("%s: levels = %d, want 10 on path10", k.name, st.Levels)
		}
		for i, s := range st.LevelSizes {
			if s != 1 {
				t.Fatalf("%s: level %d size %d, want 1", k.name, i, s)
			}
		}
		if len(st.LevelDurations) != st.Levels {
			t.Fatalf("%s: duration samples %d != levels %d", k.name, len(st.LevelDurations), st.Levels)
		}
		if st.Total() < 0 {
			t.Fatalf("%s: negative total duration", k.name)
		}
	}
}

func TestLevelSizesOnStar(t *testing.T) {
	g := gen.Star(50)
	_, st := TopDownBranchBased(g, 0)
	if st.Levels != 2 || st.LevelSizes[0] != 1 || st.LevelSizes[1] != 49 {
		t.Fatalf("star levels: %+v", st.LevelSizes)
	}
	// From a leaf: 3 levels (leaf, center, other leaves).
	_, st2 := TopDownBranchAvoiding(g, 7)
	if st2.Levels != 3 || st2.LevelSizes[2] != 48 {
		t.Fatalf("star-from-leaf levels: %+v", st2.LevelSizes)
	}
}

// TestStoreBlowup pins the paper's core BFS observation: the
// branch-avoiding kernel performs O(|E|) stores where the branch-based
// kernel performs O(|V|).
func TestStoreBlowup(t *testing.T) {
	g := gen.Grid3D(8, 8, 8, 1) // dense stencil: arcs/V ≈ 20
	_, bb := TopDownBranchBased(g, 0)
	_, ba := TopDownBranchAvoiding(g, 0)

	v := uint64(g.NumVertices())
	arcs := uint64(g.NumArcs())

	// Branch-based: exactly one dist store and one queue store per
	// reached vertex.
	if bb.DistStores != v || bb.QueueStores != v {
		t.Fatalf("BB stores = %d/%d, want %d/%d", bb.DistStores, bb.QueueStores, v, v)
	}
	// Branch-avoiding: one of each per traversed edge (arc), plus the root.
	if ba.DistStores != arcs+1 || ba.QueueStores != arcs+1 {
		t.Fatalf("BA stores = %d/%d, want %d/%d", ba.DistStores, ba.QueueStores, arcs+1, arcs+1)
	}
	ratio := float64(ba.DistStores) / float64(bb.DistStores)
	if ratio < 10 {
		t.Fatalf("store blow-up ratio %.1f too small for a dense mesh", ratio)
	}
}

func TestDisconnectedReachesOnlyComponent(t *testing.T) {
	g := gen.Disconnected(gen.Cycle(10), 2)
	for _, k := range kernels() {
		dist, st := k.run(g, 3)
		if st.Reached != 10 {
			t.Fatalf("%s: reached %d, want 10", k.name, st.Reached)
		}
		for v := 10; v < 20; v++ {
			if dist[v] != Inf {
				t.Fatalf("%s: other component reached", k.name)
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := graph.MustBuild(0, nil, graph.Options{})
	for _, k := range kernels() {
		dist, st := k.run(empty, 0)
		if len(dist) != 0 || st.Levels != 0 {
			t.Fatalf("%s: empty graph handled wrong", k.name)
		}
	}
	single := graph.MustBuild(1, nil, graph.Options{})
	for _, k := range kernels() {
		dist, st := k.run(single, 0)
		if dist[0] != 0 || st.Reached != 1 || st.Levels != 1 {
			t.Fatalf("%s: singleton handled wrong: %v %+v", k.name, dist, st)
		}
	}
}

func TestDirectionOptimizingUsesBottomUp(t *testing.T) {
	// On a complete graph the second frontier is the whole graph: with
	// aggressive thresholds the kernel must switch to bottom-up and still
	// be correct. (alpha=1, beta=n forces the check to pass on volume.)
	g := gen.Complete(60)
	dist, _ := DirectionOptimizing(g, 0, 1, 1<<30)
	want := referenceDistances(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("bottom-up distances wrong at %d", v)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := gen.Grid2D(5, 5, false)
	dist, _ := TopDownBranchBased(g, 0)
	if err := Verify(g, 0, dist); err != nil {
		t.Fatalf("valid distances rejected: %v", err)
	}

	cases := []func([]uint32){
		func(d []uint32) { d[0] = 5 },          // root not zero
		func(d []uint32) { d[24] = Inf },       // reached marked unreached
		func(d []uint32) { d[24] = 100 },       // level jump
		func(d []uint32) { d[12] = d[12] + 1 }, // orphan level (no parent)
	}
	for i, corrupt := range cases {
		bad := make([]uint32, len(dist))
		copy(bad, dist)
		corrupt(bad)
		if err := Verify(g, 0, bad); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
	if err := Verify(g, 0, dist[:3]); err == nil {
		t.Error("wrong length not caught")
	}
}

// TestBranchAvoidingQueueSlack ensures the unconditional tail write never
// overruns the queue, even when every vertex is enqueued (worst case).
func TestBranchAvoidingQueueSlack(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%100)
		g := gen.BarabasiAlbert(n, 2, seed)
		dist, _ := TopDownBranchAvoiding(g, uint32(seed%uint64(n)))
		return Verify(g, uint32(seed%uint64(n)), dist) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
