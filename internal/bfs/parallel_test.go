package bfs

import (
	"fmt"
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/testutil"
)

func TestParallelDOMatchesSequential(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		if g.NumVertices() == 0 {
			return // no root to traverse from
		}
		ref, _ := TopDownBranchBased(g, 0)
		for _, workers := range testutil.WorkerCounts {
			// Stress both heuristic regimes: default thresholds, and
			// alpha/beta forcing bottom-up almost immediately.
			for _, opt := range []ParallelOptions{
				{Workers: workers},
				{Workers: workers, Alpha: 1 << 20, Beta: 1 << 20},
			} {
				name := fmt.Sprintf("w%d/a%d", workers, opt.Alpha)
				dist, st, _ := ParallelDO(g, 0, opt)
				testutil.MustEqualDists(t, name, dist, ref)
				if err := Verify(g, 0, dist); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				var reached int
				for _, d := range dist {
					if d != Inf {
						reached++
					}
				}
				if st.Reached != reached {
					t.Fatalf("%s: Stats.Reached = %d, distance array says %d", name, st.Reached, reached)
				}
			}
		}
	})
}

func TestParallelDONonZeroRoot(t *testing.T) {
	g := gen.RMAT(11, 6, gen.DefaultRMAT, 6)
	for _, root := range []uint32{1, 17, uint32(g.NumVertices() - 1)} {
		ref, _ := TopDownBranchBased(g, root)
		dist, _, _ := ParallelDO(g, root, ParallelOptions{Workers: 4})
		for v := range dist {
			if dist[v] != ref[v] {
				t.Fatalf("root %d: dist[%d] = %d, want %d", root, v, dist[v], ref[v])
			}
		}
	}
}

func TestParallelDOSharedPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := gen.Grid3D(10, 10, 10, 1)
	ref, _ := TopDownBranchBased(g, 0)
	for run := 0; run < 3; run++ {
		dist, _, _ := ParallelDO(g, 0, ParallelOptions{Pool: pool})
		for v := range dist {
			if dist[v] != ref[v] {
				t.Fatalf("run %d: dist[%d] = %d, want %d", run, v, dist[v], ref[v])
			}
		}
	}
}

func TestParallelDOEmptyGraph(t *testing.T) {
	g := graph.MustBuild(0, nil, graph.Options{})
	dist, st, _ := ParallelDO(g, 0, ParallelOptions{Workers: 2})
	if len(dist) != 0 || st.Reached != 0 {
		t.Fatalf("empty graph: dist=%v reached=%d", dist, st.Reached)
	}
}
