package bfs

import (
	"fmt"
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/testutil"
)

// msRoots picks k spread-out in-range sources for a graph.
func msRoots(g *graph.Graph, k int) []uint32 {
	n := g.NumVertices()
	roots := make([]uint32, k)
	for i := range roots {
		roots[i] = uint32((i * 977) % n)
	}
	return roots
}

// TestMultiSourceMatchesSequential is the batch-kernel acceptance
// property: every source's distance array out of the shared sweep must
// equal an independent sequential traversal from that source, across
// the corpus and worker counts.
func TestMultiSourceMatchesSequential(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		if g.NumVertices() == 0 {
			dists, st, _ := MultiSource(g, []uint32{}, MultiSourceOptions{Workers: 2})
			if len(dists) != 0 || st.Reached != 0 {
				t.Fatalf("empty graph: %d dists, reached %d", len(dists), st.Reached)
			}
			return
		}
		k := 5
		if g.NumVertices() < k {
			k = g.NumVertices()
		}
		roots := msRoots(g, k)
		for _, workers := range testutil.WorkerCounts {
			dists, st, _ := MultiSource(g, roots, MultiSourceOptions{Workers: workers})
			if len(dists) != k {
				t.Fatalf("w%d: %d distance arrays for %d roots", workers, len(dists), k)
			}
			reached := 0
			for i, r := range roots {
				want, _ := TopDownBranchBased(g, r)
				testutil.MustEqualDists(t, fmt.Sprintf("w%d/root%d", workers, r), dists[i], want)
				for _, d := range want {
					if d != Inf {
						reached++
					}
				}
			}
			if st.Reached != reached {
				t.Fatalf("w%d: Stats.Reached = %d, distance arrays say %d", workers, st.Reached, reached)
			}
			if st.Waves != 1 {
				t.Fatalf("w%d: %d waves for %d roots", workers, st.Waves, k)
			}
		}
	})
}

// TestMultiSourceWaves drives a batch past the 64-bit mask width: 70
// sources must split into two waves and still match the oracle.
func TestMultiSourceWaves(t *testing.T) {
	g := gen.RMAT(10, 8, gen.DefaultRMAT, 5)
	roots := msRoots(g, 70)
	dists, st, _ := MultiSource(g, roots, MultiSourceOptions{Workers: 4})
	if st.Waves != 2 {
		t.Fatalf("waves = %d, want 2", st.Waves)
	}
	for i, r := range roots {
		want, _ := TopDownBranchBased(g, r)
		testutil.MustEqualDists(t, fmt.Sprintf("root%d", r), dists[i], want)
	}
}

// TestMultiSourceDuplicatesAndReuse covers duplicate roots in one
// batch (each request keeps its own array) and the Dists buffer
// contract.
func TestMultiSourceDuplicatesAndReuse(t *testing.T) {
	g := gen.Grid2D(20, 20, false)
	n := g.NumVertices()
	roots := []uint32{7, 7, 0, 7}
	bufs := make([][]uint32, len(roots))
	for i := range bufs {
		bufs[i] = make([]uint32, n)
	}
	dists, _, _ := MultiSource(g, roots, MultiSourceOptions{Workers: 2, Dists: bufs})
	for i := range dists {
		if &dists[i][0] != &bufs[i][0] {
			t.Fatalf("result %d does not alias the caller buffer", i)
		}
		want, _ := TopDownBranchBased(g, roots[i])
		testutil.MustEqualDists(t, fmt.Sprintf("req%d", i), dists[i], want)
	}
	// Reuse the buffers for a second batch: prior contents must not leak.
	roots2 := []uint32{1, 2, 3, 4}
	dists2, _, _ := MultiSource(g, roots2, MultiSourceOptions{Workers: 2, Dists: bufs})
	for i := range dists2 {
		want, _ := TopDownBranchBased(g, roots2[i])
		testutil.MustEqualDists(t, fmt.Sprintf("reuse/req%d", i), dists2[i], want)
	}
}

// TestMultiSourceSharedPool reuses one resident pool across batches.
func TestMultiSourceSharedPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := gen.Grid3D(10, 10, 10, 1)
	for run := 0; run < 3; run++ {
		dists, _, _ := MultiSource(g, []uint32{0, 500}, MultiSourceOptions{Pool: pool})
		for i, r := range []uint32{0, 500} {
			want, _ := TopDownBranchBased(g, r)
			testutil.MustEqualDists(t, fmt.Sprintf("run%d/root%d", run, r), dists[i], want)
		}
	}
}

// TestMultiSourceSharedSweepEconomy pins the batching win the daemon
// relies on: one wave's level count is bounded by the widest member,
// not the sum over members.
func TestMultiSourceSharedSweepEconomy(t *testing.T) {
	g := gen.Path(200)
	roots := msRoots(g, 8)
	_, st, _ := MultiSource(g, roots, MultiSourceOptions{Workers: 2})
	sum := 0
	for _, r := range roots {
		_, sst := TopDownBranchBased(g, r)
		sum += sst.Levels
	}
	if st.Levels >= sum {
		t.Fatalf("shared sweep used %d levels, independent traversals %d", st.Levels, sum)
	}
}
