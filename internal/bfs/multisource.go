package bfs

// Batch-aware multi-source BFS on the internal/par engine.
//
// The serving layer batches concurrent BFS queries against one graph;
// running each source as an independent traversal re-reads the whole
// adjacency structure k times. MultiSource instead runs up to 64
// sources through ONE shared bottom-up sweep per level (the MS-BFS idea
// of Then et al., VLDB 2014): each vertex carries a 64-bit mask of
// which searches have reached it, and one pass over the graph advances
// every search simultaneously —
//
//	next[v] = (OR of frontier[u] over v's neighbors) &^ seen[v]
//
// The per-edge operation is a single OR: the frontier-membership test
// that is an unpredictable branch in scalar BFS (the paper's §5
// measurement) does not merely become a conditional move here — it
// vanishes into the mask arithmetic entirely, which makes the shared
// sweep the logical endpoint of the branch-avoiding transformation.
//
// Parallelization follows the bottom-up half of ParallelDO: workers own
// degree-balanced vertex ranges and write only seen[v] / next[v] /
// dist[·][v] for their own vertices, reading the previous level's
// frontier masks immutably — no atomics, the level barrier is the only
// synchronization. Sweeps iterate a succinct "active" bitset (vertices
// not yet seen by every search in the wave) through its rank directory
// instead of visiting all |V| masks: once a vertex saturates, its bit is
// cleared by the owning worker (ranges are 64-aligned, so clears are
// race-free) and late levels skip whole 512-bit blocks of saturated
// vertices. Batches larger than 64 sources run in ceil(k/64) waves over
// reused mask arrays.

import (
	"context"
	"math/bits"
	"time"

	"bagraph/internal/bitset"
	"bagraph/internal/graph"
	"bagraph/internal/par"
)

// msWave is the number of sources one shared sweep carries: the width
// of the per-vertex search mask.
const msWave = 64

// MultiSourceOptions configures MultiSource.
type MultiSourceOptions struct {
	// Ctx, when non-nil, cancels the run cooperatively: it is observed
	// at each shared level-sweep barrier (workers never see it) and a
	// cancelled run returns the distances computed so far alongside the
	// context's error.
	Ctx context.Context
	// Workers is the number of concurrent workers; < 1 means GOMAXPROCS.
	Workers int
	// Schedule selects how each sweep's chunks reach the workers:
	// par.Static (the default) fixes one block per worker; par.Stealing
	// over-decomposes the sweep and lets idle workers steal whole
	// chunks from stragglers. Both schedules produce byte-identical
	// distances.
	Schedule par.Schedule
	// ChunkFactor scales the Stealing schedule's chunks per worker;
	// 0 means par.DefaultChunkFactor. Ignored under par.Static.
	ChunkFactor int
	// Pool, when non-nil, supplies the worker pool (its size overrides
	// Workers). The caller keeps ownership; MultiSource will not close
	// it.
	Pool *par.Pool
	// Dists, when holding len(roots) slices each of length |V|,
	// receives the per-source distances and suppresses the result
	// allocations; prior contents are overwritten. The returned slices
	// alias it. Long-lived callers (the serving layer) reuse these
	// across batches.
	Dists [][]uint32
}

// MultiStats describes one multi-source run.
type MultiStats struct {
	// Waves is the number of 64-source sweeps the batch needed.
	Waves int
	// Levels is the total number of shared level sweeps across waves;
	// k independent traversals would instead pay the sum of every
	// source's eccentricity.
	Levels int
	// LevelDurations holds per-sweep wall-clock times.
	LevelDurations []time.Duration
	// Reached is the total number of (source, vertex) discoveries,
	// including the roots themselves.
	Reached int
	// DistStores counts writes into the distance arrays.
	DistStores uint64
	// Chunks, Steals and StealPasses describe chunk scheduling across
	// all shared sweeps (see par.ChunkStats); Steals and StealPasses
	// are zero under par.Static, Chunks counts under both schedules.
	Chunks      int
	Steals      uint64
	StealPasses uint64
	// WordsScanned counts the 64-bit active-bitset words the shared
	// sweeps loaded — the frontier-locality proxy (see
	// Stats.BUWordsScanned).
	WordsScanned uint64
}

// Total returns the summed wall-clock time of all level sweeps.
func (s MultiStats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.LevelDurations {
		t += d
	}
	return t
}

// msWorker accumulates one worker's contribution to a level sweep.
type msWorker struct {
	advanced     uint64 // OR of all newly-set masks: zero means the wave ended
	reached      int
	distStores   uint64
	wordsScanned uint64 // active-bitset words loaded
}

// MultiSource runs BFS from every root through shared bottom-up mask
// sweeps and returns one distance array per root, each identical to
// what the sequential kernels produce for that root. Roots must be in
// range (the facade and the daemon validate); duplicate roots are
// allowed and produce identical arrays. A cancelled
// MultiSourceOptions.Ctx is observed at the next sweep barrier and
// returned as the error.
func MultiSource(g *graph.Graph, roots []uint32, opt MultiSourceOptions) ([][]uint32, MultiStats, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	k := len(roots)
	dists := opt.Dists
	if len(dists) != k {
		dists = make([][]uint32, k)
	}
	for i := range dists {
		if len(dists[i]) != n {
			dists[i] = make([]uint32, n)
		}
		for v := range dists[i] {
			dists[i][v] = Inf
		}
	}
	var st MultiStats
	if n == 0 || k == 0 {
		return dists, st, ctx.Err()
	}
	pool := opt.Pool
	if pool == nil {
		pool = par.NewPool(opt.Workers)
		defer pool.Close()
	}
	adj := g.Adjacency()
	offs := g.Offsets()
	// 64-aligned chunks: each worker owns whole words of the active
	// bitset, making the saturation clears below race-free.
	vchunks := par.Partition(offs, par.ChunkCount(pool.Workers(), opt.Schedule, opt.ChunkFactor), 64)
	acc := make([]msWorker, pool.Workers())

	seen := make([]uint64, n)
	frontier := make([]uint64, n)
	next := make([]uint64, n)
	// active holds the vertices some search in the wave has not yet
	// reached (seen[v] != waveFull). It only shrinks within a wave, so a
	// stale rank directory is safe; the directory is rebuilt at every
	// sweep barrier and the set refilled per wave.
	active := bitset.New(n)

	for lo := 0; lo < k; lo += msWave {
		hi := lo + msWave
		if hi > k {
			hi = k
		}
		wave := roots[lo:hi]
		waveFull := ^uint64(0)
		if width := hi - lo; width < msWave {
			waveFull = 1<<uint(width) - 1
		}
		st.Waves++
		if st.Waves > 1 {
			for i := range seen {
				seen[i] = 0
				frontier[i] = 0
			}
		}
		active.SetAll()
		for i, r := range wave {
			bit := uint64(1) << uint(i)
			seen[r] |= bit
			frontier[r] |= bit
			dists[lo+i][r] = 0
			st.DistStores++
			st.Reached++
		}

		for level := uint32(1); ; level++ {
			//ba:allow-ctx the per-level sweep barrier: one check per level inside the wave loop, never per vertex or per arc
			if err := ctx.Err(); err != nil {
				return dists, st, err
			}
			start := time.Now()
			// Skipped (saturated) vertices no longer write next[v], so the
			// swapped-in array must read zero for them.
			clear(next)
			active.BuildRank()
			// Workers own whole words of the active bitset (64-aligned
			// chunks), so the sweep is atomic-free.
			//ba:atomic-free
			cst := pool.RunChunks(vchunks, opt.Schedule, func(t int, r par.Range) {
				a := &acc[t]
				// The final probe (v == -1) also loaded words before
				// giving up; count it so the metric reflects real work.
				for v, w := active.NextSetIn(r.Lo, r.Hi); ; v, w = active.NextSetIn(v+1, r.Hi) {
					a.wordsScanned += uint64(w)
					if v == -1 {
						break
					}
					sv := seen[v]
					acquired := uint64(0)
					//ba:branch-free
					for _, u := range adj[offs[v]:offs[v+1]] {
						acquired |= frontier[u]
					}
					fresh := acquired &^ sv
					next[v] = fresh
					sv |= fresh
					seen[v] = sv
					if sv == waveFull {
						active.Clear(v)
					}
					if fresh != 0 {
						a.advanced |= fresh
						dv := level
						//ba:branch-free
						for m := fresh; m != 0; m &= m - 1 {
							i := bits.TrailingZeros64(m)
							dists[lo+i][v] = dv
							a.distStores++
							a.reached++
						}
					}
				}
			})
			st.Chunks += cst.Chunks
			st.Steals += cst.Steals
			st.StealPasses += cst.StealPasses
			advanced := uint64(0)
			for t := range acc {
				advanced |= acc[t].advanced
				st.Reached += acc[t].reached
				st.DistStores += acc[t].distStores
				st.WordsScanned += acc[t].wordsScanned
				acc[t] = msWorker{}
			}
			frontier, next = next, frontier
			st.Levels++
			st.LevelDurations = append(st.LevelDurations, time.Since(start))
			if advanced == 0 {
				break
			}
		}
	}
	return dists, st, nil
}
