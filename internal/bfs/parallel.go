package bfs

// Parallel direction-optimizing BFS on the internal/par engine.
//
// The two directions parallelize differently, and the split mirrors where
// branches live:
//
//   - Top-down levels partition the frontier across workers. Discovery
//     races (two workers reaching the same neighbor in one level) are
//     resolved with a compare-and-swap on the distance slot; the winner
//     appends the vertex to its own per-worker queue and the queues
//     concatenate at the level barrier. CAS is inherently a branch, but
//     the heuristic only picks top-down when the frontier is small, where
//     the paper shows the branchy kernel is at its best anyway.
//
//   - Bottom-up levels partition the *vertex set* by degree-balanced
//     ranges with 64-aligned boundaries, so each worker owns whole words
//     of the next-frontier bitset and writes distances only inside its
//     range: no atomics at all. Candidate vertices come from a succinct
//     unvisited bitset iterated through its rank directory
//     (bitset.NextSetIn), so sweeps skip 512-bit blocks with no
//     undiscovered vertices instead of testing dist[v] for every v —
//     the win degree-ordered relabeling amplifies by packing survivors
//     into few words. The frontier membership probe — the
//     unpredictable branch the paper's §5 measures — is computed
//     branch-avoidingly by accumulating raw frontier bits (bitset.Bit)
//     into a found mask. The scan exits once found is set: that exit
//     branch is taken once per vertex and predicted correctly until then,
//     so the data-dependent probe stays branch-free while keeping
//     bottom-up's early-termination advantage.
//
// Direction switching uses the same Beamer frontier-volume heuristic as
// the sequential DirectionOptimizing: bottom-up while the frontier's arc
// volume exceeds |arcs|/alpha and its size exceeds |V|/beta.

import (
	"context"
	"sync/atomic"
	"time"

	"bagraph/internal/bitset"
	"bagraph/internal/graph"
	"bagraph/internal/par"
)

// ParallelOptions configures ParallelDO.
type ParallelOptions struct {
	// Ctx, when non-nil, cancels the run cooperatively: it is observed
	// at each level barrier (workers never see it) and a cancelled run
	// returns the distances computed so far alongside the context's
	// error.
	Ctx context.Context
	// Workers is the number of concurrent workers; < 1 means GOMAXPROCS.
	Workers int
	// Alpha and Beta are the direction-switch thresholds; <= 0 means the
	// sequential kernel's defaults (15 and 18).
	Alpha, Beta int
	// Schedule selects how each level's chunks reach the workers:
	// par.Static (the default) fixes one block per worker; par.Stealing
	// over-decomposes the sweep and lets idle workers steal whole
	// chunks from stragglers. Both schedules produce byte-identical
	// distances.
	Schedule par.Schedule
	// ChunkFactor scales the Stealing schedule's chunks per worker;
	// 0 means par.DefaultChunkFactor. Ignored under par.Static.
	ChunkFactor int
	// Pool, when non-nil, supplies the worker pool (its size overrides
	// Workers). The caller keeps ownership; ParallelDO will not close it.
	Pool *par.Pool
	// Dist, when of length |V|, receives the distances and suppresses the
	// per-call result allocation; its prior contents are overwritten. The
	// returned slice aliases it. Long-lived callers (the serving layer)
	// reuse this across queries.
	Dist []uint32
}

// perWorkerLevel accumulates one worker's contribution to a level,
// merged at the level barrier.
type perWorkerLevel struct {
	next         []uint32 // next-frontier queue (top-down)
	count        int      // next-frontier size (bottom-up)
	volume       int64    // arc volume of the produced frontier
	distStores   uint64
	queueStores  uint64
	wordsScanned uint64 // unvisited-bitset words loaded (bottom-up)
}

// ParallelDO runs direction-optimizing BFS from root across workers and
// returns the distance array, identical to the sequential kernels'. A
// cancelled ParallelOptions.Ctx is observed at the next level barrier
// and returned as the error.
func ParallelDO(g *graph.Graph, root uint32, opt ParallelOptions) ([]uint32, Stats, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = 15
	}
	beta := opt.Beta
	if beta <= 0 {
		beta = 18
	}
	n := g.NumVertices()
	dist := opt.Dist
	if dist == nil || len(dist) != n {
		dist = make([]uint32, n)
	}
	for i := range dist {
		dist[i] = Inf
	}
	var st Stats
	if n == 0 {
		return dist, st, ctx.Err()
	}
	pool := opt.Pool
	if pool == nil {
		pool = par.NewPool(opt.Workers)
		defer pool.Close()
	}
	adj := g.Adjacency()
	offs := g.Offsets()
	arcs := g.NumArcs()
	// Vertex chunks for bottom-up sweeps: degree-balanced, 64-aligned so
	// whichever worker runs a chunk owns whole bitset words; fixed across
	// levels (only the executing worker varies under par.Stealing).
	chunkTarget := par.ChunkCount(pool.Workers(), opt.Schedule, opt.ChunkFactor)
	vchunks := par.Partition(offs, chunkTarget, 64)

	frontier := []uint32{root}
	frontierBits := bitset.New(n)
	nextBits := bitset.New(n)
	bitsValid := false // whether frontierBits mirrors frontier
	// unvisited tracks dist[v] == Inf for the bottom-up sweeps, which
	// iterate it via the rank directory instead of scanning every vertex.
	// Workers own whole words (64-aligned chunks) and Clear their own
	// discoveries, so across consecutive bottom-up levels the set only
	// shrinks — exactly the staleness the directory contract permits; the
	// directory itself is refreshed at each level barrier. Top-down levels
	// discover via CAS outside any ownership discipline, so the set goes
	// stale and is rebuilt from dist on the next bottom-up entry.
	unvisited := bitset.New(n)
	unvisitedValid := false
	volume := int64(offs[root+1] - offs[root])
	dist[root] = 0
	st.DistStores++
	st.QueueStores++

	acc := make([]perWorkerLevel, pool.Workers())
	level := uint32(0)

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			// Cancelled at the level barrier: dist holds every level
			// completed so far, the deeper vertices still Inf.
			return dist, st, err
		}
		start := time.Now()
		st.LevelSizes = append(st.LevelSizes, len(frontier))
		st.Reached += len(frontier)

		bottomUp := volume > arcs/int64(alpha) && len(frontier) > n/beta
		if bottomUp {
			st.BottomUpLevels++
			if !bitsValid {
				frontierBits.Reset()
				for _, v := range frontier {
					frontierBits.Set(int(v))
				}
			}
			nextBits.Reset()
			if !unvisitedValid {
				unvisited.Reset()
				for v := 0; v < n; v++ {
					if dist[v] == Inf {
						unvisited.Set(v)
					}
				}
			}
			unvisited.BuildRank()
			// Workers own whole bitset words (64-aligned chunks), so the
			// bottom-up sweep needs no atomics at all.
			//ba:atomic-free
			cst := pool.RunChunks(vchunks, opt.Schedule, func(t int, r par.Range) {
				a := &acc[t]
				// The final probe (v == -1) also loaded words before
				// giving up; count it so the metric reflects real work.
				for v, w := unvisited.NextSetIn(r.Lo, r.Hi); ; v, w = unvisited.NextSetIn(v+1, r.Hi) {
					a.wordsScanned += uint64(w)
					if v == -1 {
						break
					}
					found := uint32(0)
					//ba:branch-free
					for _, u := range adj[offs[v]:offs[v+1]] {
						found |= frontierBits.Bit(int(u))
						//ba:allow-branch early exit taken once per vertex and predicted until then; the membership probe itself stays a mask accumulation
						if found != 0 {
							break
						}
					}
					if found != 0 {
						dist[v] = level + 1
						a.distStores++
						nextBits.Set(v)
						a.queueStores++
						unvisited.Clear(v)
						a.count++
						a.volume += int64(offs[v+1] - offs[v])
					}
				}
			})
			unvisitedValid = true
			st.Chunks += cst.Chunks
			st.Steals += cst.Steals
			st.StealPasses += cst.StealPasses
			nextLen := 0
			volume = 0
			for t := range acc {
				nextLen += acc[t].count
				volume += acc[t].volume
				st.DistStores += acc[t].distStores
				st.QueueStores += acc[t].queueStores
				st.BUWordsScanned += acc[t].wordsScanned
				acc[t] = perWorkerLevel{}
			}
			frontierBits, nextBits = nextBits, frontierBits
			bitsValid = true
			// The next level needs a queue only if it runs top-down.
			frontier = frontier[:0]
			if nextLen > 0 && !(volume > arcs/int64(alpha) && nextLen > n/beta) {
				frontier = appendSetBits(frontier, frontierBits)
			} else {
				frontier = appendN(frontier, nextLen)
			}
		} else {
			st.TopDownLevels++
			// Frontier chunks are equal-count, not degree-balanced: the
			// frontier's arc volume is unknown until scanned, which is
			// exactly the skew the Stealing schedule absorbs.
			fchunks := par.PartitionSlice(len(frontier), chunkTarget)
			cst := pool.RunChunks(fchunks, opt.Schedule, func(t int, c par.Range) {
				a := &acc[t]
				next := level + 1
				for _, v := range frontier[c.Lo:c.Hi] {
					for _, w := range adj[offs[v]:offs[v+1]] {
						if atomic.LoadUint32(&dist[w]) != Inf {
							continue
						}
						if atomic.CompareAndSwapUint32(&dist[w], Inf, next) {
							a.distStores++
							a.next = append(a.next, w)
							a.queueStores++
							a.volume += int64(offs[w+1] - offs[w])
						}
					}
				}
			})
			st.Chunks += cst.Chunks
			st.Steals += cst.Steals
			st.StealPasses += cst.StealPasses
			frontier = frontier[:0]
			volume = 0
			for t := range acc {
				frontier = append(frontier, acc[t].next...)
				volume += acc[t].volume
				st.DistStores += acc[t].distStores
				st.QueueStores += acc[t].queueStores
				acc[t] = perWorkerLevel{}
			}
			bitsValid = false
			unvisitedValid = false
		}
		level++
		st.Levels++
		st.LevelDurations = append(st.LevelDurations, time.Since(start))
	}
	return dist, st, nil
}

// appendSetBits appends every set bit of s to dst in increasing order.
func appendSetBits(dst []uint32, s *bitset.Set) []uint32 {
	s.ForEach(func(i int) { dst = append(dst, uint32(i)) })
	return dst
}

// appendN grows dst to length n with placeholder entries. Used when the
// next level will run bottom-up and only the frontier *size* matters (the
// membership lives in the bitset); it avoids materializing a queue that
// would be thrown away. Existing capacity is resliced without clearing —
// the contents are never read.
func appendN(dst []uint32, n int) []uint32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint32, n)
}
