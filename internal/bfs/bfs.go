// Package bfs implements breadth-first-search kernels: the classical
// top-down algorithm in branch-based (the paper's Algorithm 4) and
// branch-avoiding (Algorithm 5) forms, plus a direction-optimizing
// variant (Beamer et al., the paper's reference [8]) as an extension
// baseline.
//
// One correction to the paper's Algorithm 5 pseudocode, documented because
// it affects semantics but not the operation mix: the printed CMP compares
// the neighbor's distance with d[v]. Taken literally that re-enqueues
// neighbors already discovered in the *next* frontier (their distance
// d[v]+1 is also greater than d[v]), duplicating queue entries. The
// accompanying text is unambiguous — "the first [conditional move] will
// conditionally move the distance to the vertex if it is found for the
// first time", and the queue grows only "if an element is new" — so the
// comparison must be against next_level = d[v]+1: a vertex is new exactly
// when its current distance exceeds next_level (i.e. it is ∞). The kernel
// below compares against next_level and keeps the paper's per-edge
// operation mix: one load, one compare, two conditional operations, two
// stores.
package bfs

import (
	"context"
	"fmt"
	"time"

	"bagraph/internal/core"
	"bagraph/internal/graph"
	"bagraph/internal/queue"
)

// Inf is the distance assigned to unreached vertices.
const Inf = ^uint32(0)

// Stats describes one BFS run.
type Stats struct {
	// Levels is the number of BFS levels (eccentricity of the root + 1
	// for the root's own level).
	Levels int
	// TopDownLevels and BottomUpLevels split Levels by traversal
	// direction. Pure top-down kernels count every level as top-down;
	// the direction-optimizing kernels record which way the Beamer
	// heuristic actually went — the observability the serving layer
	// wants when tuning alpha/beta.
	TopDownLevels, BottomUpLevels int
	// LevelSizes[i] is the number of vertices at distance i.
	LevelSizes []int
	// LevelDurations holds per-level wall-clock times.
	LevelDurations []time.Duration
	// Reached is the number of vertices discovered, including the root.
	Reached int
	// DistStores counts writes to the distance array; QueueStores counts
	// writes to the queue array. The branch-avoiding kernel's store
	// blow-up (the paper's §5.2/§6.3 headline) shows up here.
	DistStores  uint64
	QueueStores uint64
	// Chunks, Steals and StealPasses describe the parallel kernel's
	// chunk scheduling across all levels (see par.ChunkStats). Chunks
	// is zero only for the sequential kernels; Steals and StealPasses
	// are also zero under par.Static.
	Chunks      int
	Steals      uint64
	StealPasses uint64
	// BUWordsScanned counts the 64-bit unvisited-bitset words the
	// parallel bottom-up sweeps loaded — the frontier-locality proxy.
	// Degree-ordered relabeling concentrates unvisited survivors into
	// few words, so this drops when the layout helps; zero for kernels
	// without succinct sweeps.
	BUWordsScanned uint64
}

// Total returns the summed wall-clock time of all levels.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.LevelDurations {
		t += d
	}
	return t
}

// TopDownBranchBased runs the classical top-down BFS (Algorithm 4) from
// root and returns the distance array.
func TopDownBranchBased(g *graph.Graph, root uint32) ([]uint32, Stats) {
	dist, st, _ := TopDownBranchBasedCtx(context.Background(), g, root)
	return dist, st
}

// TopDownBranchBasedCtx is TopDownBranchBased with cooperative
// cancellation: the context is observed between levels (never in the
// per-edge loop, preserving the paper's operation mix), and a cancelled
// run returns the distances computed so far alongside ctx's error.
func TopDownBranchBasedCtx(ctx context.Context, g *graph.Graph, root uint32) ([]uint32, Stats, error) {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	var st Stats
	if n == 0 {
		return dist, st, ctx.Err()
	}
	q := queue.New(n)
	dist[root] = 0
	st.DistStores++
	q.Push(root)
	st.QueueStores++

	adj := g.Adjacency()
	offs := g.Offsets()
	buf := q.Buf()
	head, tail := 0, 1
	// Per-level accounting: the queue is level-ordered, so levels are
	// contiguous [head, levelEnd) windows.
	for head < tail {
		if err := ctx.Err(); err != nil {
			st.Reached = tail
			return dist, st, err
		}
		levelEnd := tail
		start := time.Now()
		for head < levelEnd {
			v := buf[head]
			head++
			next := dist[v] + 1
			for _, w := range adj[offs[v]:offs[v+1]] {
				if dist[w] == Inf {
					dist[w] = next
					st.DistStores++
					buf[tail] = w
					st.QueueStores++
					tail++
				}
			}
		}
		st.LevelDurations = append(st.LevelDurations, time.Since(start))
		st.LevelSizes = append(st.LevelSizes, levelEnd-lastLevelStart(st))
		st.Levels++
		st.TopDownLevels++
	}
	st.Reached = tail
	return dist, st, nil
}

// lastLevelStart returns the queue index where the level just accounted
// for began, derived from the sizes recorded so far.
func lastLevelStart(st Stats) int {
	total := 0
	for _, s := range st.LevelSizes {
		total += s
	}
	return total
}

// TopDownBranchAvoiding runs the branch-avoiding top-down BFS
// (Algorithm 5): every traversed edge unconditionally writes the neighbor
// to the queue slot at the tail and writes the neighbor's distance back;
// conditional moves select the new distance and advance the tail only
// when the neighbor was undiscovered. Stores grow from O(|V|) to O(|E|).
func TopDownBranchAvoiding(g *graph.Graph, root uint32) ([]uint32, Stats) {
	dist, st, _ := TopDownBranchAvoidingCtx(context.Background(), g, root)
	return dist, st
}

// TopDownBranchAvoidingCtx is TopDownBranchAvoiding with cooperative
// cancellation at level boundaries (see TopDownBranchBasedCtx).
func TopDownBranchAvoidingCtx(ctx context.Context, g *graph.Graph, root uint32) ([]uint32, Stats, error) {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	var st Stats
	if n == 0 {
		return dist, st, ctx.Err()
	}
	q := queue.New(n)
	dist[root] = 0
	st.DistStores++
	q.Push(root)
	st.QueueStores++

	adj := g.Adjacency()
	offs := g.Offsets()
	buf := q.Buf()
	head, tail := 0, 1
	for head < tail {
		if err := ctx.Err(); err != nil {
			st.Reached = tail
			return dist, st, err
		}
		levelEnd := tail
		start := time.Now()
		for head < levelEnd {
			v := buf[head]
			head++
			next := dist[v] + 1
			//ba:branch-free
			for _, w := range adj[offs[v]:offs[v+1]] {
				temp := dist[w]
				// Unconditional store "outside" the queue; overwritten if
				// w is not new (§5.2).
				buf[tail] = w
				st.QueueStores++
				// isNew = all-ones iff temp > next, i.e. w undiscovered.
				isNew := core.MaskGreater32(temp, next)
				temp = core.Select32(isNew, next, temp)
				tail += core.Bit(isNew)
				dist[w] = temp
				st.DistStores++
			}
		}
		st.LevelDurations = append(st.LevelDurations, time.Since(start))
		st.LevelSizes = append(st.LevelSizes, levelEnd-lastLevelStart(st))
		st.Levels++
		st.TopDownLevels++
	}
	st.Reached = tail
	return dist, st, nil
}

// DirectionOptimizing runs Beamer-style direction-optimizing BFS: top-down
// while the frontier is small, switching to bottom-up sweeps when the
// frontier's edge volume crosses |E|/alpha, and back when the frontier
// shrinks below |V|/beta. This is the modern baseline the paper cites as
// [8]; it is included as an extension to position the branch-avoiding
// variants against, and for validating the top-down kernels at scale.
func DirectionOptimizing(g *graph.Graph, root uint32, alpha, beta int) ([]uint32, Stats) {
	dist, st, _ := DirectionOptimizingCtx(context.Background(), g, root, alpha, beta)
	return dist, st
}

// DirectionOptimizingCtx is DirectionOptimizing with cooperative
// cancellation at level boundaries (see TopDownBranchBasedCtx).
func DirectionOptimizingCtx(ctx context.Context, g *graph.Graph, root uint32, alpha, beta int) ([]uint32, Stats, error) {
	if alpha <= 0 {
		alpha = 15
	}
	if beta <= 0 {
		beta = 18
	}
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	var st Stats
	if n == 0 {
		return dist, st, ctx.Err()
	}
	frontier := make([]uint32, 0, n)
	nextFrontier := make([]uint32, 0, n)
	dist[root] = 0
	st.DistStores++
	frontier = append(frontier, root)
	st.QueueStores++
	level := uint32(0)
	arcs := g.NumArcs()
	adj := g.Adjacency()
	offs := g.Offsets()

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return dist, st, err
		}
		start := time.Now()
		st.LevelSizes = append(st.LevelSizes, len(frontier))
		st.Reached += len(frontier)

		// Frontier edge volume decides the direction.
		var volume int64
		for _, v := range frontier {
			volume += int64(offs[v+1] - offs[v])
		}
		nextFrontier = nextFrontier[:0]
		if volume > arcs/int64(alpha) && len(frontier) > n/beta {
			st.BottomUpLevels++
			// Bottom-up: every undiscovered vertex scans its neighbors
			// for a parent in the frontier.
			for v := 0; v < n; v++ {
				if dist[v] != Inf {
					continue
				}
				for _, w := range adj[offs[v]:offs[v+1]] {
					if dist[w] == level {
						dist[v] = level + 1
						st.DistStores++
						nextFrontier = append(nextFrontier, uint32(v))
						st.QueueStores++
						break
					}
				}
			}
		} else {
			st.TopDownLevels++
			for _, v := range frontier {
				for _, w := range adj[offs[v]:offs[v+1]] {
					if dist[w] == Inf {
						dist[w] = level + 1
						st.DistStores++
						nextFrontier = append(nextFrontier, w)
						st.QueueStores++
					}
				}
			}
		}
		frontier, nextFrontier = nextFrontier, frontier
		level++
		st.Levels++
		st.LevelDurations = append(st.LevelDurations, time.Since(start))
	}
	return dist, st, nil
}

// Verify checks that dist is a valid BFS distance labeling of g from
// root: d[root]=0, unreached vertices are Inf, every edge spans at most
// one level, and every reached non-root vertex has a neighbor exactly one
// level closer.
func Verify(g *graph.Graph, root uint32, dist []uint32) error {
	n := g.NumVertices()
	if len(dist) != n {
		return fmt.Errorf("bfs: %d distances for %d vertices", len(dist), n)
	}
	if n == 0 {
		return nil
	}
	if dist[root] != 0 {
		return fmt.Errorf("bfs: dist[root=%d] = %d", root, dist[root])
	}
	for u := 0; u < n; u++ {
		du := dist[u]
		for _, v := range g.Neighbors(uint32(u)) {
			dv := dist[v]
			if du == Inf && dv == Inf {
				continue
			}
			if du == Inf || dv == Inf {
				return fmt.Errorf("bfs: edge (%d,%d) spans reached/unreached", u, v)
			}
			diff := int64(du) - int64(dv)
			if diff < -1 || diff > 1 {
				return fmt.Errorf("bfs: edge (%d,%d) spans levels %d and %d", u, v, du, dv)
			}
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] == Inf || dist[v] == 0 {
			continue
		}
		hasParent := false
		for _, w := range g.Neighbors(uint32(v)) {
			if dist[w] == dist[v]-1 {
				hasParent = true
				break
			}
		}
		if !hasParent {
			return fmt.Errorf("bfs: vertex %d at level %d has no parent", v, dist[v])
		}
	}
	return nil
}
