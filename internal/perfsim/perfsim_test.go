package perfsim

import (
	"testing"

	"bagraph/internal/cachesim"
	"bagraph/internal/predictor"
	"bagraph/internal/uarch"
)

func haswell() uarch.Model {
	m, ok := uarch.ByName("Haswell")
	if !ok {
		panic("missing Haswell model")
	}
	return m
}

func TestAllocDisjointRegions(t *testing.T) {
	m := NewDefault(haswell())
	a := m.Alloc(4, 1000)
	b := m.Alloc(8, 1000)
	endA := a.Addr(999) + 4
	if b.Addr(0) < endA {
		t.Fatalf("regions overlap: a ends %#x, b starts %#x", endA, b.Addr(0))
	}
	if b.Addr(0)%cachesim.LineBytes != 0 {
		t.Fatalf("region not line aligned: %#x", b.Addr(0))
	}
	if a.ElemBytes() != 4 || b.ElemBytes() != 8 {
		t.Fatal("element strides wrong")
	}
}

func TestAllocPanicsOnBadArgs(t *testing.T) {
	m := NewDefault(haswell())
	for _, f := range []func(){
		func() { m.Alloc(0, 10) },
		func() { m.Alloc(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Alloc did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRegionAddressing(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 100)
	if r.Addr(1)-r.Addr(0) != 4 {
		t.Fatal("stride wrong")
	}
	if r.Addr(16)-r.Addr(0) != 64 {
		t.Fatal("16 4-byte elements must span one line")
	}
}

func TestEventCounting(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 64)
	m.Load(r, 0)
	m.Load(r, 1)
	m.Store(r, 2)
	m.ALU(3)
	m.CondMove()
	m.Branch(0, true)

	c := m.Counters()
	if c.Loads != 2 || c.Stores != 1 || c.CondMoves != 1 || c.Branches != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
	// loads+stores+alu+cmov+branch = 2+1+3+1+1 = 8 instructions.
	if c.Instructions != 8 {
		t.Fatalf("Instructions = %d, want 8", c.Instructions)
	}
	if c.L1+c.L2+c.L3+c.Mem != c.Loads+c.Stores {
		t.Fatalf("cache level breakdown %d+%d+%d+%d != memops %d",
			c.L1, c.L2, c.L3, c.Mem, c.Loads+c.Stores)
	}
}

func TestCacheLocalityVisible(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 1024)
	// First touch of a line misses; the 15 subsequent elements on the
	// same line hit L1.
	for i := int64(0); i < 16; i++ {
		m.Load(r, i)
	}
	c := m.Counters()
	if c.Mem != 1 {
		t.Fatalf("Mem = %d, want exactly 1 cold miss", c.Mem)
	}
	if c.L1 != 15 {
		t.Fatalf("L1 = %d, want 15 same-line hits", c.L1)
	}
}

func TestBranchTrainsPredictor(t *testing.T) {
	m := NewDefault(haswell())
	// Take site 0 repeatedly: after warmup no more misses.
	for i := 0; i < 10; i++ {
		m.Branch(0, true)
	}
	warm := m.Counters().Mispredicts
	for i := 0; i < 100; i++ {
		m.Branch(0, true)
	}
	if got := m.Counters().Mispredicts; got != warm {
		t.Fatalf("trained branch still missing: %d -> %d", warm, got)
	}
	// And the return value must echo the direction.
	if !m.Branch(1, true) || m.Branch(1, false) {
		t.Fatal("Branch did not return its direction")
	}
}

func TestCondMoveNeverMispredicts(t *testing.T) {
	m := NewDefault(haswell())
	for i := 0; i < 1000; i++ {
		m.CondMove()
	}
	c := m.Counters()
	if c.Mispredicts != 0 || c.Branches != 0 {
		t.Fatalf("CondMove affected branch counters: %+v", c)
	}
	if c.CondMoves != 1000 {
		t.Fatalf("CondMoves = %d", c.CondMoves)
	}
}

func TestResetCountersKeepsState(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 64)
	m.Load(r, 0) // cold miss, installs line
	for i := 0; i < 5; i++ {
		m.Branch(0, true) // train
	}
	m.ResetCounters()
	if m.Counters() != (m.Counters().Delta(m.Counters())) {
		t.Fatal("counters not zeroed")
	}
	// Cache state preserved: same line now hits L1.
	m.Load(r, 0)
	if c := m.Counters(); c.L1 != 1 || c.Mem != 0 {
		t.Fatalf("cache state lost on ResetCounters: %+v", c)
	}
	// Predictor state preserved: trained branch must not miss.
	m.Branch(0, true)
	if m.Counters().Mispredicts != 0 {
		t.Fatal("predictor state lost on ResetCounters")
	}
}

func TestResetAllColdens(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 64)
	m.Load(r, 0)
	m.ResetAll()
	m.Load(r, 0)
	if c := m.Counters(); c.Mem != 1 {
		t.Fatalf("ResetAll kept cache warm: %+v", c)
	}
}

func TestCyclesPositiveAndModelConsistent(t *testing.T) {
	m := NewDefault(haswell())
	r := m.Alloc(4, 256)
	for i := int64(0); i < 256; i++ {
		m.Load(r, i)
		m.Branch(0, i%2 == 0) // pathological branch: lots of misses
	}
	if m.Cycles() <= 0 {
		t.Fatal("non-positive cycles")
	}
	if got, want := m.Cycles(), m.Model().Cycles(m.Counters()); got != want {
		t.Fatalf("Machine.Cycles %v != model pricing %v", got, want)
	}
	if m.Seconds() <= 0 {
		t.Fatal("non-positive seconds")
	}
}

func TestTwoLevelModelLevels(t *testing.T) {
	bob, _ := uarch.ByName("Bobcat")
	m := NewDefault(bob)
	if m.NumCacheLevels() != 2 {
		t.Fatalf("Bobcat levels = %d", m.NumCacheLevels())
	}
	r := m.Alloc(4, 64)
	m.Load(r, 0)
	c := m.Counters()
	// No L3 on Bobcat: cold miss must land in Mem, never L3.
	if c.L3 != 0 || c.Mem != 1 {
		t.Fatalf("2-level breakdown wrong: %+v", c)
	}
}

func TestCustomPredictorUnit(t *testing.T) {
	m := New(haswell(), predictor.NewStatic(true))
	m.Branch(0, false)
	m.Branch(0, false)
	if c := m.Counters(); c.Mispredicts != 2 {
		t.Fatalf("static-taken unit should miss every not-taken branch: %+v", c)
	}
}
