// Package perfsim provides the instrumented machine the kernels in
// internal/simkern run against.
//
// The paper instruments hand-written assembly with hardware performance
// counters. This package replaces the hardware with a deterministic
// model: every abstract machine operation (load, store, ALU op,
// conditional move, conditional branch) is recorded in a
// perfcount.Counters snapshot; loads and stores walk a simulated cache
// hierarchy; conditional branches run through a branch-prediction unit
// (the paper's 2-bit model by default). A uarch.Model then prices the
// event stream in cycles.
//
// Kernels allocate address Regions for each of their arrays so that the
// cache simulation sees the same spatial locality the real kernels have:
// CSR offsets, adjacency, labels, distances and the queue live in
// disjoint, line-aligned address ranges.
package perfsim

import (
	"bagraph/internal/cachesim"
	"bagraph/internal/perfcount"
	"bagraph/internal/predictor"
	"bagraph/internal/uarch"
)

// Region is a simulated array: a base address plus element stride. The
// zero value is invalid; obtain Regions from Machine.Alloc.
type Region struct {
	base uint64
	elem uint64
}

// Addr returns the simulated byte address of element i.
func (r Region) Addr(i int64) uint64 { return r.base + uint64(i)*r.elem }

// ElemBytes returns the element stride in bytes.
func (r Region) ElemBytes() int { return int(r.elem) }

// Machine is one simulated core: a microarchitecture cost model, a branch
// prediction unit, a private cache hierarchy, and an event counter set.
type Machine struct {
	model     uarch.Model
	bp        predictor.Unit
	cache     *cachesim.Hierarchy
	numLevels int
	c         perfcount.Counters
	brk       uint64 // allocation cursor
}

// New returns a machine with cold caches, an untrained predictor and zero
// counters.
func New(model uarch.Model, bp predictor.Unit) *Machine {
	return &Machine{
		model:     model,
		bp:        bp,
		cache:     model.NewCache(),
		numLevels: 2 + b2i(model.HasL3()),
		brk:       1 << 20, // leave a low guard region unallocated
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Model returns the machine's cost model.
func (m *Machine) Model() uarch.Model { return m.model }

// Predictor returns the machine's branch-prediction unit.
func (m *Machine) Predictor() predictor.Unit { return m.bp }

// Alloc reserves a simulated array of count elements of elemBytes each.
// Regions are page-aligned and separated by a guard page so that distinct
// arrays never share a cache line.
func (m *Machine) Alloc(elemBytes int, count int64) Region {
	if elemBytes <= 0 || count < 0 {
		panic("perfsim: invalid allocation")
	}
	const page = 4096
	r := Region{base: m.brk, elem: uint64(elemBytes)}
	size := uint64(elemBytes) * uint64(count)
	m.brk += (size + 2*page - 1) / page * page
	return r
}

func (m *Machine) touch(addr uint64) {
	lvl := m.cache.Access(addr)
	switch {
	case lvl == 1:
		m.c.L1++
	case lvl == 2:
		m.c.L2++
	case lvl == 3 && m.numLevels >= 3:
		m.c.L3++
	default:
		m.c.Mem++
	}
}

// Load records a memory read of element i of r.
func (m *Machine) Load(r Region, i int64) {
	m.c.Instructions++
	m.c.Loads++
	m.touch(r.Addr(i))
}

// Store records a memory write of element i of r (write-allocate).
func (m *Machine) Store(r Region, i int64) {
	m.c.Instructions++
	m.c.Stores++
	m.touch(r.Addr(i))
}

// ALU records n plain register-to-register instructions.
func (m *Machine) ALU(n int) {
	m.c.Instructions += uint64(n)
}

// CondMove records one predicated operation (conditional move or
// conditional add). Predicated operations are not branches: they never
// consult the predictor and cannot mispredict — the whole point of the
// paper's transformation.
func (m *Machine) CondMove() {
	m.c.Instructions++
	m.c.CondMoves++
}

// Branch records a conditional branch at the given static site with the
// resolved direction, consulting and training the prediction unit. It
// returns taken unchanged so call sites read naturally:
//
//	if m.Branch(siteIf, cu < cv) { ... }
func (m *Machine) Branch(site int, taken bool) bool {
	m.c.Instructions++
	m.c.Branches++
	if predictor.Observe(m.bp, site, taken) {
		m.c.Mispredicts++
	}
	return taken
}

// Counters returns the current event snapshot.
func (m *Machine) Counters() perfcount.Counters { return m.c }

// Cycles prices the machine's total event stream under its model.
func (m *Machine) Cycles() float64 { return m.model.Cycles(m.c) }

// Seconds prices the machine's total event stream in simulated seconds.
func (m *Machine) Seconds() float64 { return m.model.Seconds(m.c) }

// ResetCounters zeroes the counters, keeping cache and predictor state
// (used between measurement phases).
func (m *Machine) ResetCounters() { m.c = perfcount.Counters{} }

// ResetAll restores the machine to power-on state: cold caches, untrained
// predictor, zero counters. Allocations are preserved.
func (m *Machine) ResetAll() {
	m.cache.Reset()
	m.bp.Reset()
	m.c = perfcount.Counters{}
}

// NumCacheLevels returns the number of cache levels in the hierarchy.
func (m *Machine) NumCacheLevels() int { return m.numLevels }

// NewDefault returns a machine with the given model and the paper's 2-bit
// predictor initialized to Weakly-Not-Taken.
func NewDefault(model uarch.Model) *Machine {
	return New(model, predictor.NewTwoBit(predictor.WeaklyNotTaken))
}
