package metis

// Native fuzz targets for the parser: whatever the bytes, Read and
// ReadWeighted must either return a descriptive error or a graph that
// passes structural validation and survives a write/read round trip.
// The parser fronts the daemon's graph-loading path, so "no panics, no
// silently-invalid graphs" is a serving-layer invariant, not just
// parser hygiene.

import (
	"bytes"
	"testing"
)

func FuzzRead(f *testing.F) {
	f.Add([]byte("4 4\n2 3\n1 3 4\n1 2\n2\n"))
	f.Add([]byte("% comment\n3 1\n2\n1\n\n"))
	f.Add([]byte("2 1 0\n2\n1\n"))
	f.Add([]byte("3 5\n2\n1 3\n2\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("-1 0\n"))
	f.Add([]byte("4\n"))
	f.Add([]byte("2 1\n0\n1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to serialize: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph fails: %v", err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed size: %s -> %s", g, h)
		}
	})
}

func FuzzReadWeighted(f *testing.F) {
	f.Add([]byte("3 3 1\n2 5 3 9\n1 5 3 2\n1 9 2 2\n"))
	f.Add([]byte("2 1\n2\n1\n"))
	f.Add([]byte("2 1 1\n2 5\n1 6\n"))
	f.Add([]byte("2 1 1\n2 5 9\n1 5\n"))
	f.Add([]byte("2 1 11\n7 2 5\n7 1 5\n"))
	f.Add([]byte("2 1 1\n2 4294967295\n1 4294967295\n"))
	f.Add([]byte("3 2 1\n2 4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadWeighted(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		if int64(len(g.ArcWeights())) != g.NumArcs() {
			t.Fatalf("%d weights for %d arcs", len(g.ArcWeights()), g.NumArcs())
		}
		var buf bytes.Buffer
		if err := WriteWeighted(&buf, g.Weighted); err != nil {
			t.Fatalf("accepted graph fails to serialize: %v", err)
		}
		h, err := ReadWeighted(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph fails: %v", err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatal("round trip changed size")
		}
		aw, bw := g.ArcWeights(), h.ArcWeights()
		for i := range aw {
			if aw[i] != bw[i] {
				t.Fatalf("round trip changed weight %d: %d -> %d", i, aw[i], bw[i])
			}
		}
	})
}
