package metis

import (
	"bytes"
	"strings"
	"testing"

	"bagraph/internal/corpus"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/testutil"
)

func TestReadSimple(t *testing.T) {
	// Triangle plus a pendant: 4 vertices, 4 edges.
	input := `% a comment
4 4
2 3
1 3 4
1 2
2
`
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) || g.HasEdge(0, 3) {
		t.Fatal("edges wrong")
	}
}

func TestReadIsolatedVertexEmptyLine(t *testing.T) {
	input := "3 1\n2\n1\n\n"
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("vertex 3 degree = %d", g.Degree(2))
	}
}

func TestReadUnweightedFmtCode(t *testing.T) {
	input := "2 1 0\n2\n1\n"
	if _, err := Read(strings.NewReader(input)); err != nil {
		t.Fatalf("fmt code 0 rejected: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "x y\n",
		"one field":       "4\n",
		"vertex weights":  "2 1 11\n2 5\n1 5\n",
		"edge weights":    "2 1 1\n2 5\n1 5\n",
		"neighbor oob":    "2 1\n3\n1\n",
		"neighbor zero":   "2 1\n0\n1\n",
		"bad token":       "2 1\nfoo\n1\n",
		"missing lines":   "3 2\n2\n",
		"edge count lies": "3 5\n2\n1 3\n2\n",
		"negative n":      "-1 0\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestReadWeightedSimple(t *testing.T) {
	// Triangle with distinct weights, format code "1".
	input := `% weighted triangle
3 3 1
2 5 3 9
1 5 3 2
1 9 2 2
`
	g, err := ReadWeighted(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights {
		t.Fatal("explicit weights not reported")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	adj, ws := g.NeighborWeights(0)
	want := map[uint32]uint32{1: 5, 2: 9}
	for i, u := range adj {
		if ws[i] != want[u] {
			t.Fatalf("weight(0,%d) = %d, want %d", u, ws[i], want[u])
		}
	}
}

func TestReadWeightedUnweightedFile(t *testing.T) {
	// Unweighted input parses with unit weights, ready for SSSP.
	input := "2 1\n2\n1\n"
	g, err := ReadWeighted(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.HasWeights {
		t.Fatal("unit weights reported as explicit")
	}
	for _, w := range g.ArcWeights() {
		if w != 1 {
			t.Fatalf("unit weight = %d", w)
		}
	}
}

func TestReadWeightedErrors(t *testing.T) {
	cases := map[string]string{
		"odd tokens":        "2 1 1\n2 5 9\n1 5\n",
		"bad weight":        "2 1 1\n2 x\n1 5\n",
		"negative weight":   "2 1 1\n2 -3\n1 -3\n",
		"asymmetric weight": "2 1 1\n2 5\n1 6\n",
		"vertex weights":    "2 1 011\n7 2 5\n7 1 5\n",
		"vertex sizes":      "2 1 101\n2 5\n1 5\n",
		"bad format code":   "2 1 2\n2\n1\n",
		"long format code":  "2 1 0001\n2\n1\n",
		"ncon field":        "2 1 1 3\n2 5\n1 5\n",
		"truncated":         "3 2 1\n2 4\n",
		"edge count lies":   "3 1 1\n2 4\n1 4 3 6\n2 6\n",
	}
	for name, input := range cases {
		if _, err := ReadWeighted(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

// TestWeightedRoundTrip drives WriteWeighted→ReadWeighted equality:
// structure, weights, and the explicit-weights marker must survive.
func TestWeightedRoundTrip(t *testing.T) {
	graphs := []*graph.Weighted{
		testutil.RandomWeighted(40, 90, 9, 3),
		testutil.RandomWeighted(120, 500, 1000, 4),
		testutil.AttachHashWeights(t, gen.Grid2D(6, 7, true), 50, 5),
		graph.MustBuildWeighted(5, []graph.WeightedEdge{{U: 0, V: 1, W: 7}}, false, "mostly-isolated"),
		graph.MustBuildWeighted(3, nil, false, "edgeless"),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := WriteWeighted(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g, err)
		}
		h, err := ReadWeighted(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", g, err)
		}
		if g.NumEdges() > 0 && !h.HasWeights {
			t.Fatalf("%s: weights lost in round trip", g)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatalf("%s: round trip changed size", g)
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, aw := g.NeighborWeights(uint32(v))
			b, bw := h.NeighborWeights(uint32(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree changed", g, v)
			}
			for i := range a {
				if a[i] != b[i] || aw[i] != bw[i] {
					t.Fatalf("%s: vertex %d arc %d changed: (%d,%d) -> (%d,%d)",
						g, v, i, a[i], aw[i], b[i], bw[i])
				}
			}
		}
	}
}

// TestWeightedRoundTripThroughUnweightedRead pins the split contract:
// a weighted file is rejected by Read but its structure matches what
// ReadWeighted sees.
func TestWeightedRoundTripThroughUnweightedRead(t *testing.T) {
	g := testutil.RandomWeighted(30, 60, 5, 9)
	var buf bytes.Buffer
	if err := WriteWeighted(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("Read accepted a weighted file")
	}
	h, err := ReadWeighted(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumArcs() != g.NumArcs() {
		t.Fatalf("arcs %d -> %d", g.NumArcs(), h.NumArcs())
	}
}

func TestRoundTrip(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(12),
		gen.Star(9),
		gen.Grid2D(4, 5, true),
		gen.GNM(40, 90, 3),
		graph.MustBuild(5, []graph.Edge{{U: 0, V: 1}}, graph.Options{Name: "mostly-isolated"}),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g, err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", g, err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatalf("%s: round trip changed size", g)
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(uint32(v)), h.Neighbors(uint32(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree changed", g, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d adjacency changed", g, v)
				}
			}
		}
	}
}

func TestWriteRejectsDirected(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{{U: 0, V: 1}}, graph.Options{Directed: true})
	if err := Write(&bytes.Buffer{}, g); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestWriteEmitsNameComment(t *testing.T) {
	g := gen.Path(3)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "% path3\n") {
		t.Fatalf("output missing name comment: %q", buf.String())
	}
}

// TestRoundTripCorpusShapes drives Write→Read equality on the corpus
// stand-ins — skewed preferential-attachment and stencil-mesh shapes,
// much larger than the toy graphs above — asserting full edge-list
// equality and name preservation through the comment header.
func TestRoundTripCorpusShapes(t *testing.T) {
	for _, name := range corpus.Names() {
		d, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus graph %q missing", name)
		}
		g := d.Generate(0.005, 17)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		h, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		a, b := g.EdgeList(), h.EdgeList()
		if len(a) != len(b) {
			t.Fatalf("%s: edge count changed: %d -> %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d changed: %v -> %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestRoundTripEmptyAndEdgeless covers the degenerate headers: zero
// vertices, and vertices without edges.
func TestRoundTripEmptyAndEdgeless(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.MustBuild(0, nil, graph.Options{}),
		graph.MustBuild(7, nil, graph.Options{}),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g, err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", g, err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != 0 {
			t.Fatalf("%s: round trip changed size to %s", g, h)
		}
	}
}
