package metis

import (
	"bytes"
	"strings"
	"testing"

	"bagraph/internal/corpus"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

func TestReadSimple(t *testing.T) {
	// Triangle plus a pendant: 4 vertices, 4 edges.
	input := `% a comment
4 4
2 3
1 3 4
1 2
2
`
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) || g.HasEdge(0, 3) {
		t.Fatal("edges wrong")
	}
}

func TestReadIsolatedVertexEmptyLine(t *testing.T) {
	input := "3 1\n2\n1\n\n"
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("vertex 3 degree = %d", g.Degree(2))
	}
}

func TestReadUnweightedFmtCode(t *testing.T) {
	input := "2 1 0\n2\n1\n"
	if _, err := Read(strings.NewReader(input)); err != nil {
		t.Fatalf("fmt code 0 rejected: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "x y\n",
		"one field":       "4\n",
		"weighted":        "2 1 11\n2 5\n1 5\n",
		"neighbor oob":    "2 1\n3\n1\n",
		"neighbor zero":   "2 1\n0\n1\n",
		"bad token":       "2 1\nfoo\n1\n",
		"missing lines":   "3 2\n2\n",
		"edge count lies": "3 5\n2\n1 3\n2\n",
		"negative n":      "-1 0\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(12),
		gen.Star(9),
		gen.Grid2D(4, 5, true),
		gen.GNM(40, 90, 3),
		graph.MustBuild(5, []graph.Edge{{U: 0, V: 1}}, graph.Options{Name: "mostly-isolated"}),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g, err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", g, err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatalf("%s: round trip changed size", g)
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(uint32(v)), h.Neighbors(uint32(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree changed", g, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d adjacency changed", g, v)
				}
			}
		}
	}
}

func TestWriteRejectsDirected(t *testing.T) {
	g := graph.MustBuild(2, []graph.Edge{{U: 0, V: 1}}, graph.Options{Directed: true})
	if err := Write(&bytes.Buffer{}, g); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestWriteEmitsNameComment(t *testing.T) {
	g := gen.Path(3)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "% path3\n") {
		t.Fatalf("output missing name comment: %q", buf.String())
	}
}

// TestRoundTripCorpusShapes drives Write→Read equality on the corpus
// stand-ins — skewed preferential-attachment and stencil-mesh shapes,
// much larger than the toy graphs above — asserting full edge-list
// equality and name preservation through the comment header.
func TestRoundTripCorpusShapes(t *testing.T) {
	for _, name := range corpus.Names() {
		d, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus graph %q missing", name)
		}
		g := d.Generate(0.005, 17)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		h, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		a, b := g.EdgeList(), h.EdgeList()
		if len(a) != len(b) {
			t.Fatalf("%s: edge count changed: %d -> %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d changed: %v -> %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestRoundTripEmptyAndEdgeless covers the degenerate headers: zero
// vertices, and vertices without edges.
func TestRoundTripEmptyAndEdgeless(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.MustBuild(0, nil, graph.Options{}),
		graph.MustBuild(7, nil, graph.Options{}),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g, err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", g, err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != 0 {
			t.Fatalf("%s: round trip changed size to %s", g, h)
		}
	}
}
