// Package metis reads and writes the METIS graph format used by the 10th
// DIMACS Implementation Challenge — the distribution format of the
// paper's Table 2 graphs.
//
// Format: an optional run of '%' comment lines, a header "n m [fmt]", and
// then n lines where line i lists the (1-indexed) neighbors of vertex i.
// m is the number of undirected edges. Only the unweighted format (fmt
// absent or "0"/"00"/"000") is supported; weighted variants return a
// descriptive error rather than silently dropping weights.
package metis

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bagraph/internal/graph"
)

// Read parses a METIS graph.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	header, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("metis: missing header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("metis: malformed header %q", header)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("metis: bad vertex count %q", fields[0])
	}
	m, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || m < 0 {
		return nil, fmt.Errorf("metis: bad edge count %q", fields[1])
	}
	if len(fields) >= 3 {
		if fmtCode := strings.TrimLeft(fields[2], "0"); fmtCode != "" {
			return nil, fmt.Errorf("metis: weighted format %q not supported", fields[2])
		}
	}

	edges := make([]graph.Edge, 0, m)
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("metis: adjacency line for vertex %d: %w", v+1, err)
		}
		for _, tok := range strings.Fields(line) {
			w, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("metis: vertex %d: bad neighbor %q", v+1, tok)
			}
			if w < 1 || w > n {
				return nil, fmt.Errorf("metis: vertex %d: neighbor %d out of range [1, %d]", v+1, w, n)
			}
			// Each undirected edge appears on both endpoint lines; keep
			// the canonical direction and let the builder symmetrize.
			if v+1 <= w {
				edges = append(edges, graph.Edge{U: uint32(v), V: uint32(w - 1)})
			}
		}
	}

	g, err := graph.Build(n, edges, graph.Options{})
	if err != nil {
		return nil, fmt.Errorf("metis: %w", err)
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("metis: header declares %d edges, adjacency lists contain %d", m, g.NumEdges())
	}
	return g, nil
}

// nextDataLine returns the next non-comment line, which may be empty (an
// isolated vertex has an empty adjacency line). Comment lines start with
// '%'.
func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// Write serializes g in METIS format. The graph must be undirected.
func Write(w io.Writer, g *graph.Graph) error {
	if g.Directed() {
		return fmt.Errorf("metis: directed graphs are not representable")
	}
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		fmt.Fprintf(bw, "%% %s\n", g.Name())
	}
	fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nb := g.Neighbors(uint32(v))
		for i, u := range nb {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(u) + 1)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
