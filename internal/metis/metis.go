// Package metis reads and writes the METIS graph format used by the 10th
// DIMACS Implementation Challenge — the distribution format of the
// paper's Table 2 graphs.
//
// Format: an optional run of '%' comment lines, a header "n m [fmt]", and
// then n lines where line i lists the (1-indexed) neighbors of vertex i.
// m is the number of undirected edges. The fmt field is read
// right-to-left: the last digit set means per-edge weights (each
// neighbor is followed by its integer weight), the middle digit
// per-vertex weights, the first vertex sizes. Read accepts only the
// unweighted format; ReadWeighted additionally accepts edge-weighted
// files ("1", "01", "001") and gives unweighted files unit weights.
// Vertex weights/sizes are not supported and return a descriptive error
// rather than being silently dropped, and edge weights that disagree
// between an edge's two endpoint lines are rejected.
package metis

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bagraph/internal/graph"
)

// header is the parsed "n m [fmt]" line.
type header struct {
	n           int
	m           int64
	edgeWeights bool
}

// parseHeader validates the header line. The optional fourth field
// (ncon, the vertex-weight count) is only legal with vertex weights,
// which we reject.
func parseHeader(line string) (header, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 4 {
		return header{}, fmt.Errorf("metis: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return header{}, fmt.Errorf("metis: bad vertex count %q", fields[0])
	}
	// Vertex ids are uint32 throughout the CSR layer; a larger count
	// could never be referenced, only truncated.
	if int64(n) > 1<<31 {
		return header{}, fmt.Errorf("metis: vertex count %d exceeds the 2^31 limit", n)
	}
	m, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || m < 0 {
		return header{}, fmt.Errorf("metis: bad edge count %q", fields[1])
	}
	// A simple undirected graph cannot hold more edges than n choose 2;
	// rejecting impossible headers here also keeps the declared count
	// safe to use as an allocation hint.
	if maxEdges := int64(n) * (int64(n) - 1) / 2; m > maxEdges {
		return header{}, fmt.Errorf("metis: header declares %d edges, impossible for %d vertices", m, n)
	}
	h := header{n: n, m: m}
	if len(fields) >= 3 {
		code := fields[2]
		if len(code) > 3 || strings.Trim(code, "01") != "" {
			return header{}, fmt.Errorf("metis: bad format code %q", code)
		}
		// Right-to-left: edge weights, vertex weights, vertex sizes.
		if strings.HasSuffix(code, "1") {
			h.edgeWeights = true
		}
		if len(code) >= 2 && code[len(code)-2] == '1' {
			return header{}, fmt.Errorf("metis: vertex weights (format %q) not supported", code)
		}
		if len(code) == 3 && code[0] == '1' {
			return header{}, fmt.Errorf("metis: vertex sizes (format %q) not supported", code)
		}
	}
	// The optional fourth field (ncon) accompanies vertex weights,
	// which this parser rejects above — so any 4-field header that
	// reaches here is malformed rather than merely unsupported.
	if len(fields) == 4 {
		return header{}, fmt.Errorf("metis: ncon field without vertex weights in header %q", line)
	}
	return h, nil
}

// Read parses an unweighted METIS graph. Weighted formats return a
// descriptive error rather than silently dropping weights; use
// ReadWeighted for files carrying per-edge weights.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := newScanner(r)
	h, err := readHeader(sc)
	if err != nil {
		return nil, err
	}
	if h.edgeWeights {
		return nil, fmt.Errorf("metis: file carries edge weights; use ReadWeighted")
	}
	edges := make([]graph.Edge, 0, edgeHint(h.m))
	for v := 0; v < h.n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("metis: adjacency line for vertex %d: %w", v+1, err)
		}
		for _, tok := range strings.Fields(line) {
			w, err := parseNeighbor(tok, v, h.n)
			if err != nil {
				return nil, err
			}
			// Each undirected edge appears on both endpoint lines; keep
			// the canonical direction and let the builder symmetrize.
			if v+1 <= int(w) {
				edges = append(edges, graph.Edge{U: uint32(v), V: w - 1})
			}
		}
	}
	g, err := graph.Build(h.n, edges, graph.Options{})
	if err != nil {
		return nil, fmt.Errorf("metis: %w", err)
	}
	if g.NumEdges() != h.m {
		return nil, fmt.Errorf("metis: header declares %d edges, adjacency lists contain %d", h.m, g.NumEdges())
	}
	return g, nil
}

// ReadWeighted parses a METIS graph with optional per-edge weights
// (format code "1"). Files without edge weights parse with unit
// weights, so the result is always ready for the weighted kernels;
// Weighted reports whether the file carried explicit weights.
func ReadWeighted(r io.Reader) (*Weighted, error) {
	sc := newScanner(r)
	h, err := readHeader(sc)
	if err != nil {
		return nil, err
	}
	edges := make([]graph.WeightedEdge, 0, edgeHint(h.m))
	// Every undirected edge appears on both endpoint lines; the two
	// sightings must carry the same weight. seen records the first.
	var seen map[uint64]uint32
	if h.edgeWeights {
		seen = make(map[uint64]uint32, edgeHint(h.m))
	}
	for v := 0; v < h.n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("metis: adjacency line for vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		if h.edgeWeights && len(toks)%2 != 0 {
			return nil, fmt.Errorf("metis: vertex %d: odd token count in weighted adjacency line", v+1)
		}
		step := 1
		if h.edgeWeights {
			step = 2
		}
		for i := 0; i < len(toks); i += step {
			w, err := parseNeighbor(toks[i], v, h.n)
			if err != nil {
				return nil, err
			}
			wt := uint32(1)
			if h.edgeWeights {
				parsed, err := strconv.ParseUint(toks[i+1], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("metis: vertex %d: bad weight %q for neighbor %d", v+1, toks[i+1], w)
				}
				wt = uint32(parsed)
				lo, hi := uint32(v), w-1
				if lo > hi {
					lo, hi = hi, lo
				}
				key := uint64(lo)<<32 | uint64(hi)
				if prev, ok := seen[key]; ok {
					if prev != wt {
						return nil, fmt.Errorf("metis: edge (%d,%d) weighted %d and %d on its two endpoint lines", lo+1, hi+1, prev, wt)
					}
				} else {
					seen[key] = wt
				}
			}
			if v+1 <= int(w) {
				edges = append(edges, graph.WeightedEdge{U: uint32(v), V: w - 1, W: wt})
			}
		}
	}
	g, err := graph.BuildWeighted(h.n, edges, false, "")
	if err != nil {
		return nil, fmt.Errorf("metis: %w", err)
	}
	if g.NumEdges() != h.m {
		return nil, fmt.Errorf("metis: header declares %d edges, adjacency lists contain %d", h.m, g.NumEdges())
	}
	return &Weighted{Weighted: g, HasWeights: h.edgeWeights}, nil
}

// Weighted is ReadWeighted's result: the weighted graph plus whether
// the file carried explicit edge weights (false means unit weights
// were synthesized).
type Weighted struct {
	*graph.Weighted
	HasWeights bool
}

// edgeHint bounds the header's declared edge count before it is used
// as an allocation size: the header is untrusted input, and a absurd
// count must cost a few reallocations, not an up-front allocation.
func edgeHint(m int64) int64 {
	const max = 1 << 20
	if m > max {
		return max
	}
	return m
}

// newScanner sizes a line scanner for adjacency lines of large graphs.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return sc
}

// readHeader consumes comments and parses the header line.
func readHeader(sc *bufio.Scanner) (header, error) {
	line, err := nextDataLine(sc)
	if err != nil {
		return header{}, fmt.Errorf("metis: missing header: %w", err)
	}
	return parseHeader(line)
}

// parseNeighbor validates one 1-indexed neighbor token.
func parseNeighbor(tok string, v, n int) (uint32, error) {
	w, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("metis: vertex %d: bad neighbor %q", v+1, tok)
	}
	if w < 1 || w > n {
		return 0, fmt.Errorf("metis: vertex %d: neighbor %d out of range [1, %d]", v+1, w, n)
	}
	return uint32(w), nil
}

// nextDataLine returns the next non-comment line, which may be empty (an
// isolated vertex has an empty adjacency line). Comment lines start with
// '%'.
func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// Write serializes g in METIS format. The graph must be undirected.
func Write(w io.Writer, g *graph.Graph) error {
	return write(w, g, nil)
}

// WriteWeighted serializes g with its per-edge weights (format code
// "001"). The graph must be undirected.
func WriteWeighted(w io.Writer, g *graph.Weighted) error {
	return write(w, g.Graph, g.ArcWeights())
}

// write emits the shared format; a non-nil weights array (aligned with
// the adjacency array) selects the edge-weighted variant.
func write(w io.Writer, g *graph.Graph, weights []uint32) error {
	if g.Directed() {
		return fmt.Errorf("metis: directed graphs are not representable")
	}
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		fmt.Fprintf(bw, "%% %s\n", g.Name())
	}
	if weights != nil {
		fmt.Fprintf(bw, "%d %d 001\n", g.NumVertices(), g.NumEdges())
	} else {
		fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	}
	n := g.NumVertices()
	offs := g.Offsets()
	for v := 0; v < n; v++ {
		nb := g.Neighbors(uint32(v))
		for i, u := range nb {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(u) + 1)); err != nil {
				return err
			}
			if weights != nil {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
				if _, err := bw.WriteString(strconv.FormatUint(uint64(weights[offs[v]+int64(i)]), 10)); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
