// Package predictor implements the branch-prediction models of the paper's
// Section 3.
//
// The central model is the 2-bit saturating counter of Fig. 1: four states
// (Strongly-Not-Taken, Weakly-Not-Taken, Weakly-Taken, Strongly-Taken);
// each resolved branch moves the state one step toward the observed
// direction, and the prediction is the direction of the current half of
// the state space. The paper assumes one such counter per static branch
// with no eviction ("enough branch state storage", §3.1); TwoBitUnit
// implements exactly that.
//
// For the ablation experiments the package also provides a 1-bit predictor
// (footnote 3 of the paper), static always-taken/never-taken predictors,
// and a gshare-style two-level predictor with a finite table — the class
// of predictor real hardware implements, used to show the 2-bit model's
// bounds remain the operative ones (the paper's Fig. 9 argument).
package predictor

import "fmt"

// State is a 2-bit saturating counter state, ordered so that increments
// move toward StronglyTaken.
type State uint8

// The four FSA states of the paper's Fig. 1.
const (
	StronglyNotTaken State = iota
	WeaklyNotTaken
	WeaklyTaken
	StronglyTaken
)

// String implements fmt.Stringer with the paper's state names.
func (s State) String() string {
	switch s {
	case StronglyNotTaken:
		return "Strongly-Not-Taken"
	case WeaklyNotTaken:
		return "Weakly-Not-Taken"
	case WeaklyTaken:
		return "Weakly-Taken"
	case StronglyTaken:
		return "Strongly-Taken"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Predict returns the predicted direction in state s: taken in the two
// Taken states, not-taken otherwise.
func (s State) Predict() bool { return s >= WeaklyTaken }

// Next returns the successor state after resolving a branch with the given
// direction — one step toward the observed direction, saturating at the
// strong states. This is exactly the edge set of the paper's Fig. 1.
func (s State) Next(taken bool) State {
	if taken {
		if s == StronglyTaken {
			return StronglyTaken
		}
		return s + 1
	}
	if s == StronglyNotTaken {
		return StronglyNotTaken
	}
	return s - 1
}

// Valid reports whether s is one of the four defined states.
func (s State) Valid() bool { return s <= StronglyTaken }

// Unit models the branch-prediction hardware for a set of static branch
// sites. Each kernel enumerates its static conditional branches as small
// integer site ids (mirroring the paper's per-branch analysis of the
// while/for/if branches).
type Unit interface {
	// Predict returns the predicted direction for the site's next branch.
	Predict(site int) bool
	// Update trains the unit with the site's resolved direction.
	Update(site int, taken bool)
	// Reset restores the power-on state.
	Reset()
	// Name identifies the model in reports.
	Name() string
}

// Observe performs one predict-update cycle and reports whether the branch
// was mispredicted.
func Observe(u Unit, site int, taken bool) bool {
	miss := u.Predict(site) != taken
	u.Update(site, taken)
	return miss
}

// TwoBitUnit is the paper's model: an unbounded table of per-site 2-bit
// saturating counters (no eviction). The initial state of every counter is
// configurable; the paper's worst-case analyses start from
// StronglyNotTaken.
type TwoBitUnit struct {
	states  []State
	initial State
}

// NewTwoBit returns a TwoBitUnit whose counters power on in the given
// state.
func NewTwoBit(initial State) *TwoBitUnit {
	if !initial.Valid() {
		panic("predictor: invalid initial state")
	}
	return &TwoBitUnit{initial: initial}
}

func (u *TwoBitUnit) ensure(site int) {
	for len(u.states) <= site {
		u.states = append(u.states, u.initial)
	}
}

// Predict implements Unit.
func (u *TwoBitUnit) Predict(site int) bool {
	u.ensure(site)
	return u.states[site].Predict()
}

// Update implements Unit.
func (u *TwoBitUnit) Update(site int, taken bool) {
	u.ensure(site)
	u.states[site] = u.states[site].Next(taken)
}

// Reset implements Unit.
func (u *TwoBitUnit) Reset() { u.states = u.states[:0] }

// Name implements Unit.
func (u *TwoBitUnit) Name() string { return "2bit" }

// StateOf returns the current counter state for a site (the initial state
// if the site has never been observed).
func (u *TwoBitUnit) StateOf(site int) State {
	if site < len(u.states) {
		return u.states[site]
	}
	return u.initial
}

// SetState forces a site's counter, for constructing analysis scenarios.
func (u *TwoBitUnit) SetState(site int, s State) {
	if !s.Valid() {
		panic("predictor: invalid state")
	}
	u.ensure(site)
	u.states[site] = s
}

// OneBitUnit predicts that each branch repeats its previous direction
// (footnote 3 in the paper). Sites power on predicting not-taken.
type OneBitUnit struct {
	last []bool
}

// NewOneBit returns a 1-bit last-direction predictor.
func NewOneBit() *OneBitUnit { return &OneBitUnit{} }

func (u *OneBitUnit) ensure(site int) {
	for len(u.last) <= site {
		u.last = append(u.last, false)
	}
}

// Predict implements Unit.
func (u *OneBitUnit) Predict(site int) bool {
	u.ensure(site)
	return u.last[site]
}

// Update implements Unit.
func (u *OneBitUnit) Update(site int, taken bool) {
	u.ensure(site)
	u.last[site] = taken
}

// Reset implements Unit.
func (u *OneBitUnit) Reset() { u.last = u.last[:0] }

// Name implements Unit.
func (u *OneBitUnit) Name() string { return "1bit" }

// StaticUnit always predicts one direction and never learns. The
// always-taken variant models the cheapest possible hardware.
type StaticUnit struct {
	taken bool
}

// NewStatic returns a static predictor with the given fixed prediction.
func NewStatic(taken bool) *StaticUnit { return &StaticUnit{taken: taken} }

// Predict implements Unit.
func (u *StaticUnit) Predict(int) bool { return u.taken }

// Update implements Unit.
func (u *StaticUnit) Update(int, bool) {}

// Reset implements Unit.
func (u *StaticUnit) Reset() {}

// Name implements Unit.
func (u *StaticUnit) Name() string {
	if u.taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// GShareUnit is a two-level adaptive predictor: a global branch-history
// register XORed with the site id indexes a finite table of 2-bit
// counters. Unlike TwoBitUnit this models destructive aliasing between
// branches, the effect real hardware adds on top of the paper's idealized
// model.
type GShareUnit struct {
	historyBits uint
	tableBits   uint
	history     uint64
	table       []State
}

// NewGShare returns a gshare predictor with 2^tableBits counters and the
// given global history length. historyBits must not exceed tableBits.
func NewGShare(historyBits, tableBits uint) *GShareUnit {
	if tableBits == 0 || tableBits > 24 || historyBits > tableBits {
		panic("predictor: invalid gshare geometry")
	}
	u := &GShareUnit{historyBits: historyBits, tableBits: tableBits}
	u.table = make([]State, 1<<tableBits)
	for i := range u.table {
		u.table[i] = WeaklyNotTaken
	}
	return u
}

func (u *GShareUnit) index(site int) int {
	mask := uint64(1)<<u.tableBits - 1
	h := u.history & (uint64(1)<<u.historyBits - 1)
	return int((uint64(site) ^ h) & mask)
}

// Predict implements Unit.
func (u *GShareUnit) Predict(site int) bool {
	return u.table[u.index(site)].Predict()
}

// Update implements Unit.
func (u *GShareUnit) Update(site int, taken bool) {
	i := u.index(site)
	u.table[i] = u.table[i].Next(taken)
	u.history <<= 1
	if taken {
		u.history |= 1
	}
}

// Reset implements Unit.
func (u *GShareUnit) Reset() {
	u.history = 0
	for i := range u.table {
		u.table[i] = WeaklyNotTaken
	}
}

// Name implements Unit.
func (u *GShareUnit) Name() string {
	return fmt.Sprintf("gshare-h%d-t%d", u.historyBits, u.tableBits)
}

// Factory constructs fresh predictor units; the experiment harness uses it
// to give every simulated run an untrained unit.
type Factory func() Unit

// Catalog returns the named predictor factories used by the ablation
// experiment. "2bit" is the paper's model and the default everywhere else.
func Catalog() map[string]Factory {
	return map[string]Factory{
		"2bit":             func() Unit { return NewTwoBit(WeaklyNotTaken) },
		"2bit-worst":       func() Unit { return NewTwoBit(StronglyNotTaken) },
		"1bit":             func() Unit { return NewOneBit() },
		"static-taken":     func() Unit { return NewStatic(true) },
		"static-not-taken": func() Unit { return NewStatic(false) },
		"gshare":           func() Unit { return NewGShare(12, 14) },
	}
}
