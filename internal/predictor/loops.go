package predictor

// This file implements the loop-branch analysis of the paper's §3.2: a
// "simple sequential loop" (Algorithm 1) whose conditional test is
// evaluated n+1 times — taken n times, then not-taken once to exit. The
// helpers simulate a 2-bit counter over such traces so the lemmas can be
// verified exhaustively and reused by internal/bounds.

// LoopResult describes one execution of a simple loop's conditional branch
// under a 2-bit predictor.
type LoopResult struct {
	// Misses is the number of mispredicted evaluations of the loop test.
	Misses int
	// Final is the predictor state after the loop exits.
	Final State
}

// SimulateLoop runs the conditional test of a simple loop with body count
// n (n taken evaluations followed by one not-taken), starting from the
// given predictor state.
func SimulateLoop(initial State, n int) LoopResult {
	if n < 0 {
		panic("predictor: negative loop count")
	}
	s := initial
	misses := 0
	for i := 0; i < n; i++ {
		if !s.Predict() {
			misses++
		}
		s = s.Next(true)
	}
	if s.Predict() {
		misses++
	}
	s = s.Next(false)
	return LoopResult{Misses: misses, Final: s}
}

// SimulateNestedLoop runs an inner loop executed k times with the given
// per-execution body counts (lemma 3's setting: the same static branch is
// re-entered k times). len(counts) must equal k; counts[i] is the body
// count of execution i. The initial state applies to the first execution
// only — subsequent executions inherit the state left by the previous one.
func SimulateNestedLoop(initial State, counts []int) LoopResult {
	s := initial
	misses := 0
	for _, n := range counts {
		r := SimulateLoop(s, n)
		misses += r.Misses
		s = r.Final
	}
	return LoopResult{Misses: misses, Final: s}
}

// SimulateTrace feeds an arbitrary outcome sequence to a 2-bit counter and
// returns the misprediction count and final state.
func SimulateTrace(initial State, outcomes []bool) LoopResult {
	s := initial
	misses := 0
	for _, taken := range outcomes {
		if s.Predict() != taken {
			misses++
		}
		s = s.Next(taken)
	}
	return LoopResult{Misses: misses, Final: s}
}

// WorstCaseLoopMisses returns the paper's bound on loop-test mispredictions
// for a single simple loop with body count n (§3.2): 3 for n ≥ 3 (lemma
// 2), and the exact worst cases for small n (lemmas 4–6).
func WorstCaseLoopMisses(n int) int {
	switch n {
	case 0:
		return 1 // lemma 4
	case 1:
		return 2 // lemma 5
	case 2:
		return 3 // lemma 6
	default:
		return 3 // lemma 2
	}
}

// NestedLoopMissBound returns lemma 3's bound for an inner loop executed k
// times: up to 3 misses on the first execution and 1 on each of the
// remaining k-1, i.e. k+2 (assuming n ≥ 3 on the first execution and
// n ≥ 1 afterwards).
func NestedLoopMissBound(k int) int {
	if k <= 0 {
		return 0
	}
	return k + 2
}
