package predictor

import (
	"strings"
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

// TestFSATransitionTable pins the complete edge set of the paper's Fig. 1.
func TestFSATransitionTable(t *testing.T) {
	cases := []struct {
		from  State
		taken bool
		want  State
	}{
		{StronglyNotTaken, false, StronglyNotTaken},
		{StronglyNotTaken, true, WeaklyNotTaken},
		{WeaklyNotTaken, false, StronglyNotTaken},
		{WeaklyNotTaken, true, WeaklyTaken},
		{WeaklyTaken, false, WeaklyNotTaken},
		{WeaklyTaken, true, StronglyTaken},
		{StronglyTaken, false, WeaklyTaken},
		{StronglyTaken, true, StronglyTaken},
	}
	for _, c := range cases {
		if got := c.from.Next(c.taken); got != c.want {
			t.Errorf("%v --taken=%v--> %v, want %v", c.from, c.taken, got, c.want)
		}
	}
}

func TestStatePredictions(t *testing.T) {
	for s, want := range map[State]bool{
		StronglyNotTaken: false,
		WeaklyNotTaken:   false,
		WeaklyTaken:      true,
		StronglyTaken:    true,
	} {
		if s.Predict() != want {
			t.Errorf("%v.Predict() = %v, want %v", s, s.Predict(), want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StronglyNotTaken, WeaklyNotTaken, WeaklyTaken, StronglyTaken} {
		if !strings.Contains(s.String(), "Taken") {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(9).String() != "State(9)" {
		t.Errorf("invalid state String() = %q", State(9).String())
	}
	if State(9).Valid() {
		t.Error("State(9) reported valid")
	}
}

var allStates = []State{StronglyNotTaken, WeaklyNotTaken, WeaklyTaken, StronglyTaken}

// TestLemma1 — for n ≥ 3 the final state is Weakly-Taken from any start.
func TestLemma1(t *testing.T) {
	for _, s0 := range allStates {
		for n := 3; n <= 40; n++ {
			r := SimulateLoop(s0, n)
			if r.Final != WeaklyTaken {
				t.Fatalf("lemma 1 violated: start %v, n=%d, final %v", s0, n, r.Final)
			}
		}
	}
}

// TestLemma2 — for n ≥ 3 the loop test incurs between 1 and 3 misses,
// worst case exactly 3 from Strongly-Not-Taken.
func TestLemma2(t *testing.T) {
	for _, s0 := range allStates {
		for n := 3; n <= 40; n++ {
			r := SimulateLoop(s0, n)
			if r.Misses < 1 || r.Misses > 3 {
				t.Fatalf("lemma 2 violated: start %v, n=%d, misses=%d", s0, n, r.Misses)
			}
		}
	}
	if r := SimulateLoop(StronglyNotTaken, 10); r.Misses != 3 {
		t.Fatalf("worst case from SNT: misses=%d, want 3", r.Misses)
	}
	// From any taken state the only miss is the final not-taken exit.
	if r := SimulateLoop(StronglyTaken, 10); r.Misses != 1 {
		t.Fatalf("from ST: misses=%d, want 1", r.Misses)
	}
}

// TestLemma3 — k executions of the inner loop incur at most k+2 misses
// (≤3 on the first, exactly 1 on each subsequent with n ≥ 1).
func TestLemma3(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k := 2 + r.Intn(50)
		counts := make([]int, k)
		counts[0] = 3 + r.Intn(20)
		for i := 1; i < k; i++ {
			counts[i] = 1 + r.Intn(20)
		}
		for _, s0 := range allStates {
			res := SimulateNestedLoop(s0, counts)
			if res.Misses > NestedLoopMissBound(k) {
				return false
			}
			if res.Final != WeaklyTaken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCorollary1 — for large k the miss count is approximately k: exactly
// 1 per execution once warmed up.
func TestCorollary1(t *testing.T) {
	k := 1000
	counts := make([]int, k)
	for i := range counts {
		counts[i] = 5
	}
	res := SimulateNestedLoop(StronglyNotTaken, counts)
	if res.Misses < k || res.Misses > k+2 {
		t.Fatalf("corollary 1: misses=%d for k=%d, want within [k, k+2]", res.Misses, k)
	}
}

// TestLemma4 — n=0: predictor moves toward SNT, never lands in ST, and
// incurs 0 or 1 misses.
func TestLemma4(t *testing.T) {
	for _, s0 := range allStates {
		r := SimulateLoop(s0, 0)
		if r.Misses != 0 && r.Misses != 1 {
			t.Errorf("lemma 4: start %v misses=%d", s0, r.Misses)
		}
		if r.Final == StronglyTaken {
			t.Errorf("lemma 4: start %v ended Strongly-Taken", s0)
		}
		if r.Final.Next(false) != r.Final && r.Final >= s0 && s0 != StronglyNotTaken {
			// The state must have moved toward not-taken (decreased),
			// except when already saturated at SNT.
			t.Errorf("lemma 4: start %v did not move toward SNT (final %v)", s0, r.Final)
		}
	}
}

// TestLemma5 — n=1: the predictor returns to its initial state with 1 or 2
// misses. The paper states this for the loop-context-reachable states
// (after any prior loop execution the counter sits in {SNT, WNT, WT}, by
// lemmas 1 and 4); from Strongly-Taken the saturation on the taken edge
// breaks the symmetry and the counter ends at Weakly-Taken instead. The
// test pins both behaviours.
func TestLemma5(t *testing.T) {
	for _, s0 := range []State{StronglyNotTaken, WeaklyNotTaken, WeaklyTaken} {
		r := SimulateLoop(s0, 1)
		if r.Final != s0 {
			t.Errorf("lemma 5: start %v final %v, want return to start", s0, r.Final)
		}
		if r.Misses < 1 || r.Misses > 2 {
			t.Errorf("lemma 5: start %v misses=%d", s0, r.Misses)
		}
	}
	r := SimulateLoop(StronglyTaken, 1)
	if r.Final != WeaklyTaken || r.Misses != 1 {
		t.Errorf("lemma 5 ST corner: final %v misses %d, want Weakly-Taken with 1 miss", r.Final, r.Misses)
	}
}

// TestLemma6 — n=2: final state is weak, with 1 to 3 misses.
func TestLemma6(t *testing.T) {
	for _, s0 := range allStates {
		r := SimulateLoop(s0, 2)
		if r.Final != WeaklyTaken && r.Final != WeaklyNotTaken {
			t.Errorf("lemma 6: start %v final %v", s0, r.Final)
		}
		if r.Misses < 1 || r.Misses > 3 {
			t.Errorf("lemma 6: start %v misses=%d", s0, r.Misses)
		}
	}
}

func TestWorstCaseLoopMissesMatchesSimulation(t *testing.T) {
	for n := 0; n <= 50; n++ {
		worst := 0
		for _, s0 := range allStates {
			if m := SimulateLoop(s0, n).Misses; m > worst {
				worst = m
			}
		}
		if want := WorstCaseLoopMisses(n); worst != want {
			t.Errorf("n=%d: simulated worst %d, bound %d", n, worst, want)
		}
	}
}

func TestSimulateLoopNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SimulateLoop(-1) did not panic")
		}
	}()
	SimulateLoop(WeaklyTaken, -1)
}

func TestSimulateTraceAgainstManual(t *testing.T) {
	// Alternating T/NT from WNT: every prediction wrong until the counter
	// oscillates; verify against hand-computed sequence.
	// WNT: predict NT, see T (miss) -> WT; predict T, see NT (miss) -> WNT; ...
	out := []bool{true, false, true, false, true, false}
	r := SimulateTrace(WeaklyNotTaken, out)
	if r.Misses != 6 {
		t.Fatalf("alternating trace misses = %d, want 6 (pathological oscillation)", r.Misses)
	}
	if r.Final != WeaklyNotTaken {
		t.Fatalf("alternating trace final = %v", r.Final)
	}
}

func TestTwoBitUnitTrainsPerSite(t *testing.T) {
	u := NewTwoBit(WeaklyNotTaken)
	// Train site 0 toward taken; site 1 must stay untouched.
	for i := 0; i < 5; i++ {
		u.Update(0, true)
	}
	if !u.Predict(0) {
		t.Fatal("site 0 not trained to taken")
	}
	if u.Predict(1) {
		t.Fatal("site 1 affected by site 0 training")
	}
	if u.StateOf(0) != StronglyTaken {
		t.Fatalf("site 0 state = %v", u.StateOf(0))
	}
	if u.StateOf(7) != WeaklyNotTaken {
		t.Fatalf("untouched site state = %v", u.StateOf(7))
	}
}

func TestTwoBitUnitReset(t *testing.T) {
	u := NewTwoBit(StronglyNotTaken)
	u.Update(3, true)
	u.Reset()
	if u.StateOf(3) != StronglyNotTaken {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestTwoBitSetStateValidation(t *testing.T) {
	u := NewTwoBit(WeaklyTaken)
	defer func() {
		if recover() == nil {
			t.Fatal("SetState(invalid) did not panic")
		}
	}()
	u.SetState(0, State(99))
}

func TestNewTwoBitInvalidInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTwoBit(invalid) did not panic")
		}
	}()
	NewTwoBit(State(17))
}

func TestObserveCountsMisses(t *testing.T) {
	u := NewTwoBit(StronglyNotTaken)
	misses := 0
	for _, taken := range []bool{true, true, true, false} {
		if Observe(u, 0, taken) {
			misses++
		}
	}
	// SNT->T miss, WNT->T miss, WT->T hit, ST->NT miss.
	if misses != 3 {
		t.Fatalf("Observe misses = %d, want 3", misses)
	}
}

func TestOneBitUnit(t *testing.T) {
	u := NewOneBit()
	if u.Predict(0) {
		t.Fatal("1-bit unit should power on predicting not-taken")
	}
	u.Update(0, true)
	if !u.Predict(0) {
		t.Fatal("1-bit unit did not follow last direction")
	}
	u.Update(0, false)
	if u.Predict(0) {
		t.Fatal("1-bit unit did not flip back")
	}
	u.Reset()
	if u.Predict(0) {
		t.Fatal("Reset did not clear 1-bit state")
	}
}

// TestOneBitVsTwoBitOnLoops verifies the classic motivation for 2-bit
// counters: on repeated loop executions the 1-bit predictor misses twice
// per execution (exit and re-entry) where the 2-bit counter misses once.
func TestOneBitVsTwoBitOnLoops(t *testing.T) {
	one, two := NewOneBit(), NewTwoBit(WeaklyTaken)
	oneMisses, twoMisses := 0, 0
	const k, n = 50, 10
	for exec := 0; exec < k; exec++ {
		for i := 0; i < n; i++ {
			if Observe(one, 0, true) {
				oneMisses++
			}
			if Observe(two, 0, true) {
				twoMisses++
			}
		}
		if Observe(one, 0, false) {
			oneMisses++
		}
		if Observe(two, 0, false) {
			twoMisses++
		}
	}
	if twoMisses != k {
		t.Fatalf("2-bit misses = %d, want %d (1 per execution)", twoMisses, k)
	}
	if oneMisses < 2*k-1 {
		t.Fatalf("1-bit misses = %d, want ~%d (2 per execution)", oneMisses, 2*k)
	}
}

func TestStaticUnits(t *testing.T) {
	at := NewStatic(true)
	ant := NewStatic(false)
	for i := 0; i < 10; i++ {
		if !at.Predict(i) || ant.Predict(i) {
			t.Fatal("static predictions wrong")
		}
		at.Update(i, false) // must not learn
		ant.Update(i, true)
	}
	if !at.Predict(0) || ant.Predict(0) {
		t.Fatal("static predictor learned")
	}
	if at.Name() == ant.Name() {
		t.Fatal("static names collide")
	}
	at.Reset()
	ant.Reset()
}

func TestGShareLearnsPattern(t *testing.T) {
	u := NewGShare(4, 10)
	// A period-2 pattern (T, NT, T, NT, ...) is unlearnable for a 2-bit
	// counter but trivial with history: after warmup gshare should be
	// nearly perfect.
	misses := 0
	const warm, measured = 200, 1000
	for i := 0; i < warm+measured; i++ {
		taken := i%2 == 0
		miss := Observe(u, 5, taken)
		if i >= warm && miss {
			misses++
		}
	}
	if misses > measured/50 {
		t.Fatalf("gshare misses %d/%d on period-2 pattern after warmup", misses, measured)
	}
}

func TestGShareAliasing(t *testing.T) {
	// With a tiny table, two sites trained in opposite directions must
	// interfere — that is the effect GShare exists to model.
	u := NewGShare(0, 1) // single-entry effective index space of 2
	for i := 0; i < 100; i++ {
		u.Update(0, true)
		u.Update(2, false) // same table index as site 0 (bit 1 masked off)
	}
	// Counter saw an alternating stream; it cannot be strongly biased
	// toward both. At least one of the two sites must mispredict its own
	// bias.
	agree0 := u.Predict(0) == true
	agree2 := u.Predict(2) == false
	if agree0 && agree2 {
		t.Fatal("aliased gshare entries satisfied both conflicting sites")
	}
}

func TestGShareReset(t *testing.T) {
	u := NewGShare(4, 8)
	for i := 0; i < 50; i++ {
		u.Update(1, true)
	}
	u.Reset()
	if u.Predict(1) {
		t.Fatal("Reset did not restore weakly-not-taken tables")
	}
}

func TestGShareGeometryPanics(t *testing.T) {
	for _, geo := range [][2]uint{{5, 4}, {0, 0}, {30, 30}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGShare(%d,%d) did not panic", geo[0], geo[1])
				}
			}()
			NewGShare(geo[0], geo[1])
		}()
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	cat := Catalog()
	for name, factory := range cat {
		u := factory()
		if u == nil {
			t.Fatalf("factory %q returned nil", name)
		}
		// Smoke: must handle observe cycles on several sites.
		for site := 0; site < 4; site++ {
			for i := 0; i < 8; i++ {
				Observe(u, site, i%3 != 0)
			}
		}
		u.Reset()
	}
	if _, ok := cat["2bit"]; !ok {
		t.Fatal("catalog missing the paper's 2bit model")
	}
}

// Property: for any outcome trace, 2-bit misses never exceed trace length
// and equal trace length only for pathological alternation.
func TestTraceMissBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(200)
		outcomes := make([]bool, n)
		for i := range outcomes {
			outcomes[i] = r.Bool()
		}
		for _, s0 := range allStates {
			res := SimulateTrace(s0, outcomes)
			if res.Misses < 0 || res.Misses > n {
				return false
			}
			if !res.Final.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the TwoBitUnit driven via Observe agrees exactly with the pure
// FSA simulation.
func TestUnitMatchesFSAProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(300)
		outcomes := make([]bool, n)
		for i := range outcomes {
			outcomes[i] = r.Bool()
		}
		u := NewTwoBit(WeaklyNotTaken)
		unitMisses := 0
		for _, taken := range outcomes {
			if Observe(u, 3, taken) {
				unitMisses++
			}
		}
		ref := SimulateTrace(WeaklyNotTaken, outcomes)
		return unitMisses == ref.Misses && u.StateOf(3) == ref.Final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
