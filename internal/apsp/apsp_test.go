package apsp

import (
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

func TestMatrixMatchesFloydWarshall(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(10),
		gen.Cycle(9),
		gen.Star(12),
		gen.Grid2D(4, 5, false),
		gen.Complete(7),
		gen.GNM(20, 35, 3),
		gen.Disconnected(gen.Path(4), 3),
	}
	for _, g := range graphs {
		for _, v := range []Variant{BranchBased, BranchAvoiding} {
			if err := VerifyMatrix(g, AllDistances(g, v)); err != nil {
				t.Fatalf("variant %d on %s: %v", v, g, err)
			}
		}
	}
}

func TestMatrixProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%20)
		g := gen.GNM(n, int64(n), seed)
		return VerifyMatrix(g, AllDistances(g, BranchAvoiding)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSummaryPath(t *testing.T) {
	g := gen.Path(10)
	for _, v := range []Variant{BranchBased, BranchAvoiding} {
		r := Summary(g, v)
		if r.Diameter != 9 {
			t.Fatalf("path diameter = %d", r.Diameter)
		}
		if r.Radius != 5 { // center vertices have ecc 5
			t.Fatalf("path radius = %d", r.Radius)
		}
		if r.Ecc[0] != 9 || r.Ecc[4] != 5 {
			t.Fatalf("ecc wrong: %v", r.Ecc)
		}
		if r.ReachablePairs != 90 {
			t.Fatalf("reachable pairs = %d", r.ReachablePairs)
		}
	}
}

func TestSummaryCycleUniform(t *testing.T) {
	g := gen.Cycle(8)
	r := Summary(g, BranchAvoiding)
	if r.Diameter != 4 || r.Radius != 4 {
		t.Fatalf("cycle8: diameter=%d radius=%d", r.Diameter, r.Radius)
	}
	for _, e := range r.Ecc {
		if e != 4 {
			t.Fatalf("cycle ecc not uniform: %v", r.Ecc)
		}
	}
	// Mean distance of C8: distances 1,1,2,2,3,3,4 per vertex → 16/7.
	want := 16.0 / 7.0
	if diff := r.MeanDistance - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean distance = %v, want %v", r.MeanDistance, want)
	}
}

func TestSummaryVariantsAgree(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 5)
	a := Summary(g, BranchBased)
	b := Summary(g, BranchAvoiding)
	if a.Diameter != b.Diameter || a.Radius != b.Radius ||
		a.ReachablePairs != b.ReachablePairs || a.MeanDistance != b.MeanDistance {
		t.Fatalf("summaries differ: %+v vs %+v", a, b)
	}
}

func TestSummaryDisconnected(t *testing.T) {
	g := gen.Disconnected(gen.Path(3), 2)
	r := Summary(g, BranchBased)
	if r.Diameter != 2 {
		t.Fatalf("diameter = %d", r.Diameter)
	}
	// Each component: 3 vertices, 6 ordered pairs.
	if r.ReachablePairs != 12 {
		t.Fatalf("pairs = %d", r.ReachablePairs)
	}
	isolated := graph.MustBuild(3, nil, graph.Options{})
	r2 := Summary(isolated, BranchBased)
	if r2.Diameter != 0 || r2.Radius != 0 || r2.ReachablePairs != 0 || r2.MeanDistance != 0 {
		t.Fatalf("isolated summary: %+v", r2)
	}
}

func TestSummaryMatchesPseudoDiameter(t *testing.T) {
	// PseudoDiameter is a lower bound on the true diameter.
	g := gen.GNM(60, 120, 9)
	r := Summary(g, BranchAvoiding)
	if pd := g.PseudoDiameter(); uint32(pd) > r.Diameter {
		t.Fatalf("pseudo-diameter %d exceeds true diameter %d", pd, r.Diameter)
	}
}

func TestVerifyMatrixCatchesCorruption(t *testing.T) {
	g := gen.Cycle(6)
	d := AllDistances(g, BranchBased)
	d[2][3]++
	if err := VerifyMatrix(g, d); err == nil {
		t.Fatal("corrupted matrix accepted")
	}
	if err := VerifyMatrix(g, d[:2]); err == nil {
		t.Fatal("truncated matrix accepted")
	}
}
