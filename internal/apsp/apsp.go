// Package apsp implements all-pairs shortest paths for unweighted graphs
// via repeated BFS with a selectable kernel — the APSP extension the
// paper's §1 mentions ("All-Pairs Shortest-Paths (APSP) [24, 48]"; the
// references are Floyd and Warshall, and FloydWarshall here serves as the
// cross-validation oracle).
//
// For sparse graphs, |V| breadth-first searches beat the O(|V|³) dynamic
// program asymptotically, and each search is exactly one of the paper's
// kernels — so the branch-based/branch-avoiding trade-off transfers
// unchanged, amplified |V| times.
package apsp

import (
	"fmt"

	"bagraph/internal/bfs"
	"bagraph/internal/graph"
)

// Inf marks unreachable pairs.
const Inf = bfs.Inf

// Variant selects the BFS kernel used for the sweeps.
type Variant int

// Kernel variants.
const (
	BranchBased Variant = iota
	BranchAvoiding
)

func run(g *graph.Graph, root uint32, v Variant) []uint32 {
	switch v {
	case BranchAvoiding:
		dist, _ := bfs.TopDownBranchAvoiding(g, root)
		return dist
	default:
		dist, _ := bfs.TopDownBranchBased(g, root)
		return dist
	}
}

// Result summarizes the distance structure of a graph.
type Result struct {
	// Ecc[v] is v's eccentricity within its component (0 for isolated
	// vertices).
	Ecc []uint32
	// Diameter is the maximum finite distance; Radius the minimum
	// eccentricity over non-isolated vertices (0 if none).
	Diameter uint32
	Radius   uint32
	// ReachablePairs counts ordered pairs (u, v), u ≠ v, with finite
	// distance; MeanDistance averages over them (0 if none).
	ReachablePairs int64
	MeanDistance   float64
}

// Summary runs a BFS from every vertex and aggregates eccentricities,
// diameter, radius and mean distance. O(|V|·(|V|+|E|)).
func Summary(g *graph.Graph, v Variant) Result {
	n := g.NumVertices()
	res := Result{Ecc: make([]uint32, n)}
	var sum uint64
	radiusSet := false
	for s := 0; s < n; s++ {
		dist := run(g, uint32(s), v)
		var ecc uint32
		for t, d := range dist {
			if d == Inf || t == s {
				continue
			}
			if d > ecc {
				ecc = d
			}
			sum += uint64(d)
			res.ReachablePairs++
		}
		res.Ecc[s] = ecc
		if ecc > res.Diameter {
			res.Diameter = ecc
		}
		if ecc > 0 && (!radiusSet || ecc < res.Radius) {
			res.Radius = ecc
			radiusSet = true
		}
	}
	if res.ReachablePairs > 0 {
		res.MeanDistance = float64(sum) / float64(res.ReachablePairs)
	}
	return res
}

// AllDistances materializes the full |V|×|V| distance matrix. Intended
// for small graphs (tests, exact diameter checks); memory is O(|V|²).
func AllDistances(g *graph.Graph, v Variant) [][]uint32 {
	n := g.NumVertices()
	out := make([][]uint32, n)
	for s := 0; s < n; s++ {
		out[s] = run(g, uint32(s), v)
	}
	return out
}

// FloydWarshall computes the distance matrix with the classical O(|V|³)
// dynamic program — the paper's APSP references [24, 48] — used as an
// independent oracle.
func FloydWarshall(g *graph.Graph) [][]uint32 {
	n := g.NumVertices()
	d := make([][]uint32, n)
	for i := range d {
		d[i] = make([]uint32, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = Inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(uint32(u)) {
			d[u][w] = 1
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik == Inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if dk[j] == Inf {
					continue
				}
				if cand := dik + dk[j]; cand < di[j] {
					di[j] = cand
				}
			}
		}
	}
	return d
}

// VerifyMatrix checks a distance matrix against the Floyd-Warshall
// oracle.
func VerifyMatrix(g *graph.Graph, got [][]uint32) error {
	want := FloydWarshall(g)
	if len(got) != len(want) {
		return fmt.Errorf("apsp: %d rows for %d vertices", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			return fmt.Errorf("apsp: row %d has %d entries", i, len(got[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("apsp: d[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}
